module Latch = Pitree_sync.Latch
module Version = Pitree_sync.Version
module Clock = Pitree_sync.Clock
module Histogram = Pitree_util.Histogram

(* The pool is hash-sharded: each shard has its own mutex, frame table and
   second-chance clock ring, so pins of unrelated pages never serialize on
   one lock. The shard mutex is never held across disk I/O — a miss
   installs a [Loading] placeholder and reads off-mutex; eviction of a
   dirty victim flips it to [Writing] and writes off-mutex. Concurrent
   requesters of an in-flight page wait on the frame's own condition
   variable, not the shard, so one slow read cannot freeze hits. *)

type state = Loading | Ready | Writing

type frame = {
  pid : int;
  mutable page : Page.t;
  latch : Latch.t;
  mutable dirty : bool;
  mutable rec_lsn : int;
      (* recovery LSN: set at the clean->dirty transition to (WAL tail + 1)
         — falling back to (page LSN + 1) with no LSN source installed — a
         lower bound on the first log record whose effect is not yet in
         the durable image; meaningful only while [dirty] *)
  pins : int Atomic.t;
  cond : Condition.t;
  mutable state : state;
  mutable referenced : bool;
  mutable waiters : int;
  slot : int;
  img_log : (int -> Page.t -> unit) option ref;
      (* shared with the pool: full-page-write hook fired at each
         clean->dirty transition, before [dirty] is set (see mark_dirty) *)
  lsn_src : (unit -> int) option ref;
      (* shared with the pool: current WAL tail, consulted at the
         clean->dirty transition of a page with no history (LSN 0), whose
         own LSN cannot bound its first record (see mark_dirty) *)
}

type shard = {
  mu : Mutex.t;
  table : (int, frame) Hashtbl.t;
  ring : frame option array;
  mutable hand : int;
  mutable free : int list; (* unoccupied ring slots *)
  mutable used : int;
  miss_wait : Histogram.t; (* ns spent in off-mutex miss I/O *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
}

type t = {
  disk : Disk.t;
  shards : shard array;
  mask : int; (* Array.length shards - 1; shard count is a power of two *)
  shard_cap : int;
  max_retries : int;
  backoff_base : float;
  pin_attempts : int;
  jitter : int Atomic.t; (* shared splitmix-style state for backoff jitter *)
  wal_flush : int -> unit;
  img_log : (int -> Page.t -> unit) option ref;
  lsn_src : (unit -> int) option ref;
  mutable dead : bool; (* written under every shard mutex, read under one *)
  retried_reads : int Atomic.t;
  retried_writes : int Atomic.t;
}

exception Pool_exhausted

(* Bounded retries when every frame in the target shard is pinned: total
   sleep is ~40ms with the default budget and backoff, enough to ride out
   transient fan-in spikes without masking a genuinely undersized pool. *)
let default_pin_attempts = 20

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

let create ?(capacity = 1024) ?shards ?(max_retries = 12)
    ?(backoff_base = 0.0002) ?(pin_attempts = default_pin_attempts)
    ?(backoff_seed = 0) ~disk ~wal_flush () =
  if capacity < 8 then invalid_arg "Buffer_pool.create: capacity < 8";
  if pin_attempts < 0 then invalid_arg "Buffer_pool.create: pin_attempts < 0";
  let requested =
    match shards with
    | Some s ->
        if s < 1 then invalid_arg "Buffer_pool.create: shards < 1";
        next_pow2 s
    | None -> min 64 (next_pow2 (Domain.recommended_domain_count ()))
  in
  (* Tiny pools keep fewer shards so each ring still has room to breathe
     (and [?shards:1] with a small capacity reproduces the legacy
     single-mutex pool exactly). *)
  let nshards = ref requested in
  while !nshards > 1 && capacity / !nshards < 8 do
    nshards := !nshards / 2
  done;
  let nshards = !nshards in
  let shard_cap = max 8 ((capacity + nshards - 1) / nshards) in
  let mk_shard _ =
    {
      mu = Mutex.create ();
      table = Hashtbl.create shard_cap;
      ring = Array.make shard_cap None;
      hand = 0;
      free = List.init shard_cap Fun.id;
      used = 0;
      miss_wait = Histogram.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
      flushes = 0;
    }
  in
  {
    disk;
    shards = Array.init nshards mk_shard;
    mask = nshards - 1;
    shard_cap;
    max_retries;
    backoff_base;
    pin_attempts;
    jitter = Atomic.make (backoff_seed land max_int);
    wal_flush;
    img_log = ref None;
    lsn_src = ref None;
    dead = false;
    retried_reads = Atomic.make 0;
    retried_writes = Atomic.make 0;
  }

let capacity t = Array.length t.shards * t.shard_cap
let shards t = Array.length t.shards
let pin_attempts t = t.pin_attempts

(* Fibonacci-hash the pid so adjacent pages (siblings under one parent)
   spread across shards instead of clustering. *)
let shard_of t pid = t.shards.((pid * 0x9E3779B1) land t.mask)

(* Seeded jitter for the backoff ladder: a multiplicative factor in
   [0.5, 1.5) drawn from a shared splitmix-style counter. Concurrent
   waiters (many threads hitting a full shard or a flapping disk at once)
   draw different factors and desynchronize instead of stampeding back in
   lockstep. Interleaving of concurrent draws only permutes the sequence;
   a fixed seed plus a deterministic draw order reproduces it exactly. *)
let jitter_factor t =
  let x = Atomic.fetch_and_add t.jitter 0x9E3779B9 in
  let x = x lxor (x lsr 16) in
  let x = x * 0x21F0AAAD land max_int in
  let x = x lxor (x lsr 15) in
  let x = x * 0x735A2D97 land max_int in
  let x = x lxor (x lsr 15) in
  0.5 +. (float_of_int (x land 0xFFFFF) /. 1_048_576.)

(* Capped exponential backoff (with jitter) before retry [attempt]
   (0-based). *)
let backoff_duration t attempt =
  let d = t.backoff_base *. (2.0 ** float_of_int (min attempt 4)) in
  min d 0.002 *. jitter_factor t

let backoff t attempt = Thread.delay (backoff_duration t attempt)

(* Read page [pid]'s durable image, absorbing transient disk errors (with
   backoff) and transient read-path corruption (immediate re-read). A
   corrupt image that reads back byte-identical twice is persistent — the
   durable image itself is torn or rotten — so we stop retrying and let
   [Page.Corrupt] surface (recovery treats it as "no durable image").
   Called without any shard mutex held. *)
let read_durable t pid =
  let buf = Bytes.make t.disk.Disk.page_size '\000' in
  let rec go attempt last_corrupt =
    match
      t.disk.Disk.read pid buf;
      Page.of_durable ~id:pid buf
    with
    | page -> page
    | exception Disk.Disk_error { transient = true; _ }
      when attempt < t.max_retries ->
        Atomic.incr t.retried_reads;
        backoff t attempt;
        go (attempt + 1) last_corrupt
    | exception (Page.Corrupt _ as e) when attempt < t.max_retries ->
        let image = Bytes.copy buf in
        (match last_corrupt with
        | Some prev when Bytes.equal prev image -> raise e
        | _ ->
            Atomic.incr t.retried_reads;
            go (attempt + 1) (Some image))
  in
  go 0 None

(* WAL-then-write one frame's image. The WAL protocol: the log must be
   durable up to the page's LSN before the page image may reach disk.
   Callers guarantee no concurrent mutator (the frame is [Writing] with no
   pins, or the caller holds the shard mutex on a pinned frame it owns). *)
let write_frame t fr =
  t.wal_flush (Page.lsn fr.page);
  Page.stamp_checksum fr.page;
  let rec put attempt =
    match t.disk.Disk.write (Page.id fr.page) (Page.raw fr.page) with
    | () -> ()
    | exception Disk.Disk_error { transient = true; _ }
      when attempt < t.max_retries ->
        Atomic.incr t.retried_writes;
        backoff t attempt;
        put (attempt + 1)
  in
  put 0

(* Caller holds [sh.mu]. *)
let remove_frame sh fr =
  Hashtbl.remove sh.table fr.pid;
  sh.ring.(fr.slot) <- None;
  sh.free <- fr.slot :: sh.free;
  sh.used <- sh.used - 1

(* Second-chance clock sweep. Caller holds [sh.mu]; the mutex is RELEASED
   and re-taken around the write-out of a dirty victim, so the caller must
   re-validate anything it learned before calling (the sweep budget of two
   full revolutions bounds the scan: pass one strips referenced bits, pass
   two finds a victim). Returns [true] if a slot was freed. On exception
   (e.g. a crash point firing inside [wal_flush]) the victim is restored
   to [Ready], waiters are woken, and [sh.mu] is UNLOCKED. *)
let try_evict_one t sh =
  let n = Array.length sh.ring in
  let budget = ref (2 * n) in
  let freed = ref false in
  while (not !freed) && !budget > 0 do
    decr budget;
    let slot = sh.hand in
    sh.hand <- (sh.hand + 1) mod n;
    match sh.ring.(slot) with
    | None -> ()
    | Some fr ->
        if fr.state <> Ready || Atomic.get fr.pins > 0 || fr.waiters > 0 then
          ()
        else if fr.referenced then fr.referenced <- false
        else if not fr.dirty then begin
          remove_frame sh fr;
          sh.evictions <- sh.evictions + 1;
          freed := true
        end
        else begin
          (* Dirty victim: write it out off-mutex. [Writing] bars new pins
             (they wait on [fr.cond]), and pins cannot appear from thin air
             because increments only happen under [sh.mu]. *)
          fr.state <- Writing;
          Mutex.unlock sh.mu;
          match write_frame t fr with
          | () ->
              Mutex.lock sh.mu;
              fr.dirty <- false;
              fr.state <- Ready;
              sh.flushes <- sh.flushes + 1;
              (* Someone may have started waiting for this page while we
                 wrote: resurrect the (now clean) frame instead of
                 evicting it out from under them. *)
              if Atomic.get fr.pins = 0 && fr.waiters = 0 then begin
                remove_frame sh fr;
                sh.evictions <- sh.evictions + 1;
                freed := true
              end;
              Condition.broadcast fr.cond
          | exception e ->
              Mutex.lock sh.mu;
              fr.state <- Ready;
              Condition.broadcast fr.cond;
              Mutex.unlock sh.mu;
              raise e
        end
  done;
  !freed

(* Invariant for [pin_loop]: entered holding [sh.mu]; returns or raises
   with [sh.mu] unlocked. *)
let rec pin_loop t sh pid ~read ~attempt =
  if t.dead then begin
    Mutex.unlock sh.mu;
    failwith "Buffer_pool: used after crash"
  end;
  match Hashtbl.find_opt sh.table pid with
  | Some fr when fr.state = Ready ->
      Atomic.incr fr.pins;
      fr.referenced <- true;
      sh.hits <- sh.hits + 1;
      Mutex.unlock sh.mu;
      fr
  | Some fr ->
      (* Loading or Writing: wait on the frame, not the shard, then
         re-lookup (the frame may have been replaced or removed). *)
      if Pitree_util.Sched_hook.active () then begin
        Mutex.unlock sh.mu;
        (* Ready, or removed/replaced after a failed load — either way the
           re-lookup below resolves it. *)
        Pitree_util.Sched_hook.wait Cond
          (Printf.sprintf "frame-%d" pid)
          (fun () ->
            match Hashtbl.find_opt sh.table pid with
            | Some fr' when fr' == fr -> fr.state = Ready
            | _ -> true);
        Mutex.lock sh.mu
      end
      else begin
        fr.waiters <- fr.waiters + 1;
        Condition.wait fr.cond sh.mu;
        fr.waiters <- fr.waiters - 1
      end;
      pin_loop t sh pid ~read ~attempt
  | None ->
      if sh.used >= t.shard_cap then begin
        if try_evict_one t sh then
          (* A slot was freed, but the mutex may have been dropped during
             a dirty write-out: re-run the lookup from scratch. *)
          pin_loop t sh pid ~read ~attempt
        else if attempt >= t.pin_attempts then begin
          Mutex.unlock sh.mu;
          raise Pool_exhausted
        end
        else begin
          (* Every frame transiently pinned: back off off-mutex and
             retry a bounded number of times before giving up.  Under the
             simulator, yield instead of sleeping so another fiber gets a
             chance to unpin. *)
          Mutex.unlock sh.mu;
          if Pitree_util.Sched_hook.active () then
            Pitree_util.Sched_hook.yield Cond
              (Printf.sprintf "pool-full-%d" pid)
          else backoff t attempt;
          Mutex.lock sh.mu;
          pin_loop t sh pid ~read ~attempt:(attempt + 1)
        end
      end
      else begin
        sh.misses <- sh.misses + 1;
        let slot =
          match sh.free with
          | s :: rest ->
              sh.free <- rest;
              s
          | [] -> assert false (* used < shard_cap *)
        in
        let fresh_page () =
          (* Pre-format minimally so Page accessors are safe until the
             caller's logged Format operation (pin_new) or the durable
             image (miss read) replaces it. *)
          Page.create ~size:t.disk.Disk.page_size ~id:pid ~kind:Page.Free
            ~level:0
        in
        let fr =
          {
            pid;
            page = fresh_page ();
            latch = Latch.create ~name:(Printf.sprintf "page-%d" pid) ();
            dirty = false;
            rec_lsn = 0;
            pins = Atomic.make 1;
            cond = Condition.create ();
            state = (if read then Loading else Ready);
            referenced = true;
            waiters = 0;
            slot;
            img_log = t.img_log;
            lsn_src = t.lsn_src;
          }
        in
        (* Optimistic readers validate against the latch's version word;
           key it to the page LSN so the published value equals
           2 * state_id for any saved-path entry naming this page,
           across evictions and re-loads (DESIGN.md section 14). The
           closure reads [fr.page] at publish time, so it tracks the
           image installed by the off-mutex read below. *)
        Latch.set_state_source fr.latch (fun () -> Page.lsn fr.page);
        sh.ring.(slot) <- Some fr;
        sh.used <- sh.used + 1;
        Hashtbl.replace sh.table pid fr;
        if not read then begin
          Mutex.unlock sh.mu;
          fr
        end
        else begin
          (* The expensive part — the durable read with its retry/backoff
             ladder — runs with no shard mutex held. Concurrent
             requesters of [pid] queue on [fr.cond]; hits on other pages
             in this shard proceed unimpeded. *)
          Mutex.unlock sh.mu;
          let t0 = Clock.now_ns () in
          match read_durable t pid with
          | page ->
              Mutex.lock sh.mu;
              Histogram.record sh.miss_wait (Clock.now_ns () - t0);
              fr.page <- page;
              (* Re-seed before [Ready] flips: a pin is granted only on
                 Ready frames, so no optimistic reader can have
                 snapshotted the placeholder's version. *)
              Version.seed (Latch.version fr.latch) (Page.lsn page);
              fr.state <- Ready;
              Condition.broadcast fr.cond;
              Mutex.unlock sh.mu;
              fr
          | exception e ->
              (* Failed load: withdraw the placeholder so waiters retry
                 (and observe the failure themselves if it persists). *)
              Mutex.lock sh.mu;
              remove_frame sh fr;
              Condition.broadcast fr.cond;
              Mutex.unlock sh.mu;
              raise e
        end
      end

let pin_common t pid ~read =
  let sh = shard_of t pid in
  Mutex.lock sh.mu;
  pin_loop t sh pid ~read ~attempt:0

let pin t pid = pin_common t pid ~read:true
let pin_new t pid = pin_common t pid ~read:false

(* Lock-free: the release of a pin is a plain atomic decrement.

   Memory-model audit (Multicore OCaml: all [Atomic] operations are
   seqcst and carry the writer's full frontier — there is no relaxed
   variant to get wrong). Two orderings matter here:

   - dirty-bit publication: a dirtying writer's [mark_dirty] (plain
     stores to [dirty]/[rec_lsn]) precedes its decrement in program
     order, so the decrement's frontier includes them; the evictor reads
     [pins] with [Atomic.get] before reading [dirty], acquiring that
     frontier — the dirty bit is always visible to whoever sees the pin
     drop. Were the decrement relaxed, the evictor could see pins = 0
     with a stale clean bit and drop the only copy of the update.

   - version-word publication: an X-latch release does
     [Version.publish] (an [Atomic.set] of the latch's version word)
     after the holder's last plain page write and before this unpin, so
     an optimistic reader whose [Version.validate] observes the
     published value also observes every page byte it covers. The sim
     regression (test_sim: olc torn-read window) pins the schedule that
     would expose a torn read if either edge were reorderable. *)
let unpin _t fr =
  let old = Atomic.fetch_and_add fr.pins (-1) in
  assert (old > 0)

(* Lock-free second pin on a frame the caller already holds pinned. Sound
   ONLY under that precondition: a pinned frame cannot be evicted or
   reused (the clock hand skips pins > 0 and [Writing] bars transitions
   while waiters exist), so the increment cannot race a victim selection
   the way a from-scratch [pin] could — which is exactly why [pin] must
   take the shard mutex and this must not. Used for the permanently
   pinned root-frame cache in the latch-free read path. *)
let repin _t fr =
  let old = Atomic.fetch_and_add fr.pins 1 in
  assert (old > 0)

(* Callers hold the frame's X latch (or are single-threaded recovery), so
   the clean->dirty transition cannot race with another dirtier; write-back
   paths clear [dirty] only while excluding mutators (shard mutex + no
   pins, or an S latch). The update protocol calls this BEFORE appending
   the log record, so at the instant any LSN is assigned to the change the
   page is already in every dirty-page snapshot. *)
let mark_dirty fr =
  if not fr.dirty then begin
    (* Full-page write: a clean page with history (LSN > 0) has a durable
       image that is about to become the only copy of everything below
       rec_lsn once the log is truncated past it — capture the image in the
       log first, so a torn durable copy can still be rebuilt. Fired before
       [dirty] flips and before the caller's update record, under the
       caller's X latch, so the image is the exact pre-update durable
       state. Freshly created pages (LSN 0) have no history to protect. *)
    (* At the clean->dirty instant the durable image holds every update the
       page has ever seen, so the first record NOT yet in it is the one the
       caller is about to append — which lands strictly above the current
       WAL tail. [tail + 1] is therefore a sound rec_lsn, and a *tight*
       one. The fallback [page LSN + 1] (used when no source is installed:
       bare pools in tests, and recovery's redo pass) is equally sound but
       arbitrarily loose: one update to a cold page whose LSN predates the
       last checkpoint drags the redo floor — and with it the truncation
       point — back below the retained log, and under steady traffic over
       a large key space some checkpoint-interval always contains one, so
       the log never shrinks. Same for freshly created pages (LSN 0), whose
       fallback rec_lsn of 1 floors truncation at the log origin.

       Read the tail BEFORE logging the full-page image: the image is
       appended after the read, so image LSN >= rec_lsn and truncation
       keeps the image exactly as long as the page needs it. *)
    let bound =
      match !(fr.lsn_src) with
      | Some tail -> tail () + 1
      | None -> Page.lsn fr.page + 1
    in
    (match !(fr.img_log) with
    | Some logf when Page.lsn fr.page > 0 -> logf fr.pid fr.page
    | _ -> ());
    fr.rec_lsn <- bound;
    fr.dirty <- true
  end

let set_image_logger t hook = t.img_log := hook
let image_logger t = !(t.img_log)
let set_lsn_source t hook = t.lsn_src := hook
let lsn_source t = !(t.lsn_src)

let check_alive t = if t.dead then failwith "Buffer_pool: used after crash"

(* Caller holds the shard mutex of [fr] and [fr] is Ready (checkpoint
   paths hold the mutex across the write; simplicity over concurrency —
   these are not hot paths). *)
let write_locked t sh fr =
  if fr.dirty then begin
    write_frame t fr;
    fr.dirty <- false;
    sh.flushes <- sh.flushes + 1
  end

let flush_page t fr =
  let sh = shard_of t fr.pid in
  Mutex.lock sh.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.mu)
    (fun () ->
      check_alive t;
      write_locked t sh fr)

(* Snapshot the dirty-page table — (page id, rec_lsn) for every dirty
   frame — without stopping writers: each shard is visited under its own
   mutex, one at a time. Frames mid-write-back ([Writing]) are still
   reported (their dirty bit clears only once the write completes), which
   is conservative: a stale entry can only lower the redo point. *)
let dirty_pages t =
  check_alive t;
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.mu;
      let acc =
        Hashtbl.fold
          (fun _ fr l -> if fr.dirty then (fr.pid, fr.rec_lsn) :: l else l)
          sh.table acc
      in
      Mutex.unlock sh.mu;
      acc)
    [] t.shards

(* Incremental write-back for fuzzy checkpoints: flush currently-dirty
   frames one at a time, holding no shard mutex across I/O and only an S
   latch on the page being written — concurrent readers proceed, and a
   writer blocks only for the one page's write, not the pool. Each frame is
   pinned (under the shard mutex, so eviction cannot race) and re-validated
   before writing. Returns the number of pages written. *)
let write_back t =
  check_alive t;
  let written = ref 0 in
  Array.iter
    (fun sh ->
      let candidates =
        Mutex.lock sh.mu;
        let l =
          Hashtbl.fold
            (fun _ fr l -> if fr.dirty then fr.pid :: l else l)
            sh.table []
        in
        Mutex.unlock sh.mu;
        l
      in
      List.iter
        (fun pid ->
          Mutex.lock sh.mu;
          let fr =
            match Hashtbl.find_opt sh.table pid with
            | Some fr when fr.state = Ready && fr.dirty ->
                Atomic.incr fr.pins;
                Some fr
            | _ -> None
          in
          Mutex.unlock sh.mu;
          match fr with
          | None -> ()
          | Some fr ->
              Latch.acquire fr.latch Latch.S;
              Fun.protect
                ~finally:(fun () ->
                  Latch.release fr.latch Latch.S;
                  ignore (Atomic.fetch_and_add fr.pins (-1)))
                (fun () ->
                  (* The S latch excludes mutators; an eviction write-out
                     cannot be in flight (the frame is pinned). *)
                  if fr.dirty then begin
                    write_frame t fr;
                    Mutex.lock sh.mu;
                    fr.dirty <- false;
                    sh.flushes <- sh.flushes + 1;
                    Mutex.unlock sh.mu;
                    incr written
                  end))
        candidates)
    t.shards;
  !written

(* Sharp flush: drain until no resident page is dirty. The previous
   implementation held each shard's mutex across the writes and took no
   page latches, which was documented-unsafe against concurrent page
   mutators: a writer holding a frame's X latch mid-mutation does not
   touch the shard mutex, so the flusher could write a half-updated image
   — and a torn durable image of a clean-looking page is invisible to
   recovery. Each round now delegates to [write_back], which writes under
   per-page S latches (excluding mutators) with no shard mutex held
   across I/O; pages re-dirtied (or still [Writing] from an eviction)
   during a round are picked up by the next, and the loop exits only when
   a full sweep finds the dirty-page table empty. Termination requires
   mutators to quiesce eventually — true at the sharp-checkpoint call
   sites (environment create/close); a concurrent workload merely delays
   completion and is flushed correctly (see test_pool's
   flush_all-vs-mutator regression). *)
(* Power-failure image dump for crash simulation: write every dirty frame
   as-is, taking no page latches. A dying machine's cache write-back does
   not coordinate with the application — the workload may have unwound
   with X latches still held (a latched flush would self-deadlock on
   them), and a mid-mutation or torn image is precisely the durable state
   a power failure produces. Dirty bits are left set and per-page disk
   errors are swallowed (a fail-stopped device simply loses the rest);
   only meaningful immediately before [crash]. *)
let crash_flush t =
  check_alive t;
  Array.iter
    (fun sh ->
      let frames =
        Mutex.lock sh.mu;
        let l =
          Hashtbl.fold
            (fun _ fr l -> if fr.dirty then fr :: l else l)
            sh.table []
        in
        Mutex.unlock sh.mu;
        l
      in
      List.iter
        (fun fr -> try write_frame t fr with Disk.Disk_error _ -> ())
        frames)
    t.shards

let rec flush_all t =
  ignore (write_back t : int);
  if dirty_pages t <> [] then begin
    (* An eviction's off-mutex write-out ([Writing]) keeps the dirty bit
       until it completes; don't spin hot waiting for it. *)
    Thread.yield ();
    flush_all t
  end

let crash t =
  Array.iter (fun sh -> Mutex.lock sh.mu) t.shards;
  Array.iter
    (fun sh ->
      Hashtbl.reset sh.table;
      Array.fill sh.ring 0 (Array.length sh.ring) None;
      sh.free <- List.init (Array.length sh.ring) Fun.id;
      sh.used <- 0;
      sh.hand <- 0)
    t.shards;
  t.dead <- true;
  Array.iter (fun sh -> Mutex.unlock sh.mu) t.shards

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  retried_reads : int;
  retried_writes : int;
  shards : int;
  shard_evictions : int array;
  hit_ratio : float;
  miss_wait_mean_ns : float;
  miss_wait_p99_ns : int;
}

let stats (t : t) =
  let hits = ref 0
  and misses = ref 0
  and evictions = ref 0
  and flushes = ref 0 in
  let shard_evictions = Array.make (Array.length t.shards) 0 in
  let hist = ref (Histogram.create ()) in
  Array.iteri
    (fun i sh ->
      Mutex.lock sh.mu;
      hits := !hits + sh.hits;
      misses := !misses + sh.misses;
      evictions := !evictions + sh.evictions;
      flushes := !flushes + sh.flushes;
      shard_evictions.(i) <- sh.evictions;
      hist := Histogram.merge !hist sh.miss_wait;
      Mutex.unlock sh.mu)
    t.shards;
  let h = !hist in
  let pins = !hits + !misses in
  {
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    flushes = !flushes;
    retried_reads = Atomic.get t.retried_reads;
    retried_writes = Atomic.get t.retried_writes;
    shards = Array.length t.shards;
    shard_evictions;
    hit_ratio = (if pins = 0 then 0. else float_of_int !hits /. float_of_int pins);
    miss_wait_mean_ns = (if Histogram.count h = 0 then 0. else Histogram.mean h);
    miss_wait_p99_ns = Histogram.percentile h 99.;
  }

module Testing = struct
  let backoff_duration t ~attempt = backoff_duration t attempt
end
