module Latch = Pitree_sync.Latch

type frame = {
  page : Page.t;
  latch : Latch.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable tick : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  retried_reads : int;
  retried_writes : int;
}

type t = {
  disk : Disk.t;
  cap : int;
  max_retries : int;
  backoff_base : float;
  table : (int, frame) Hashtbl.t;
  mu : Mutex.t;
  wal_flush : int -> unit;
  mutable clock : int;
  mutable dead : bool;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable retried_reads : int;
  mutable retried_writes : int;
}

exception Pool_exhausted

let create ?(capacity = 1024) ?(max_retries = 12) ?(backoff_base = 0.0002)
    ~disk ~wal_flush () =
  if capacity < 8 then invalid_arg "Buffer_pool.create: capacity < 8";
  {
    disk;
    cap = capacity;
    max_retries;
    backoff_base;
    table = Hashtbl.create capacity;
    mu = Mutex.create ();
    wal_flush;
    clock = 0;
    dead = false;
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
    retried_reads = 0;
    retried_writes = 0;
  }

let capacity t = t.cap

let check_alive t = if t.dead then failwith "Buffer_pool: used after crash"

(* Capped exponential backoff before retry [attempt] (0-based). *)
let backoff t attempt =
  let d = t.backoff_base *. (2.0 ** float_of_int (min attempt 4)) in
  Thread.delay (min d 0.002)

(* Read page [pid]'s durable image, absorbing transient disk errors (with
   backoff) and transient read-path corruption (immediate re-read). A
   corrupt image that reads back byte-identical twice is persistent — the
   durable image itself is torn or rotten — so we stop retrying and let
   [Page.Corrupt] surface (recovery treats it as "no durable image"). *)
let read_durable t pid =
  let buf = Bytes.make t.disk.Disk.page_size '\000' in
  let rec go attempt last_corrupt =
    match
      t.disk.Disk.read pid buf;
      Page.of_durable ~id:pid buf
    with
    | page -> page
    | exception Disk.Disk_error { transient = true; _ }
      when attempt < t.max_retries ->
        t.retried_reads <- t.retried_reads + 1;
        backoff t attempt;
        go (attempt + 1) last_corrupt
    | exception (Page.Corrupt _ as e) when attempt < t.max_retries ->
        let image = Bytes.copy buf in
        (match last_corrupt with
        | Some prev when Bytes.equal prev image -> raise e
        | _ ->
            t.retried_reads <- t.retried_reads + 1;
            go (attempt + 1) (Some image))
  in
  go 0 None

(* Caller holds [t.mu]. *)
let write_out t fr =
  if fr.dirty then begin
    t.wal_flush (Page.lsn fr.page);
    Page.stamp_checksum fr.page;
    let rec put attempt =
      match t.disk.Disk.write (Page.id fr.page) (Page.raw fr.page) with
      | () -> ()
      | exception Disk.Disk_error { transient = true; _ }
        when attempt < t.max_retries ->
          t.retried_writes <- t.retried_writes + 1;
          backoff t attempt;
          put (attempt + 1)
    in
    put 0;
    fr.dirty <- false;
    t.flushes <- t.flushes + 1
  end

(* Caller holds [t.mu]. Evict the least-recently-used unpinned frame. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun pid fr ->
      if fr.pins = 0 then
        match !victim with
        | Some (_, best) when best.tick <= fr.tick -> ()
        | _ -> victim := Some (pid, fr))
    t.table;
  match !victim with
  | None -> raise Pool_exhausted
  | Some (pid, fr) ->
      write_out t fr;
      Hashtbl.remove t.table pid;
      t.evictions <- t.evictions + 1

(* Caller holds [t.mu]. *)
let install t pid page =
  if Hashtbl.length t.table >= t.cap then evict_one t;
  let fr =
    {
      page;
      latch = Latch.create ~name:(Printf.sprintf "page-%d" pid) ();
      dirty = false;
      pins = 1;
      tick = t.clock;
    }
  in
  Hashtbl.replace t.table pid fr;
  fr

let pin_common t pid ~read =
  Mutex.lock t.mu;
  check_alive t;
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table pid with
  | Some fr ->
      fr.pins <- fr.pins + 1;
      fr.tick <- t.clock;
      t.hits <- t.hits + 1;
      Mutex.unlock t.mu;
      fr
  | None -> (
      t.misses <- t.misses + 1;
      let build_and_install () =
        let page =
          if read then read_durable t pid
          else
            (* Freshly allocated page: pre-format minimally so Page accessors
               are safe until the caller's logged Format operation runs. *)
            Page.create ~size:t.disk.Disk.page_size ~id:pid ~kind:Page.Free
              ~level:0
        in
        install t pid page
      in
      match build_and_install () with
      | fr ->
          Mutex.unlock t.mu;
          fr
      | exception e ->
          Mutex.unlock t.mu;
          raise e)

let pin t pid = pin_common t pid ~read:true
let pin_new t pid = pin_common t pid ~read:false

let unpin t fr =
  Mutex.lock t.mu;
  assert (fr.pins > 0);
  fr.pins <- fr.pins - 1;
  Mutex.unlock t.mu

let mark_dirty fr = fr.dirty <- true

let flush_page t fr =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      check_alive t;
      write_out t fr)

let flush_all t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      check_alive t;
      Hashtbl.iter (fun _ fr -> write_out t fr) t.table)

let crash t =
  Mutex.lock t.mu;
  Hashtbl.reset t.table;
  t.dead <- true;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      flushes = t.flushes;
      retried_reads = t.retried_reads;
      retried_writes = t.retried_writes;
    }
  in
  Mutex.unlock t.mu;
  s
