module Rng = Pitree_util.Rng

exception Disk_error of { pid : int; op : string; transient : bool }

let () =
  Printexc.register_printer (function
    | Disk_error { pid; op; transient } ->
        Some
          (Printf.sprintf "Disk_error (page %d, %s, %s)" pid op
             (if transient then "transient" else "hard"))
    | _ -> None)

type t = {
  page_size : int;
  read : int -> bytes -> unit;
  write : int -> bytes -> unit;
  sync : unit -> unit;
  close : unit -> unit;
  read_count : unit -> int;
  write_count : unit -> int;
}

let in_memory ~page_size =
  let store : (int, bytes) Hashtbl.t = Hashtbl.create 1024 in
  let mu = Mutex.create () in
  let reads = Atomic.make 0 and writes = Atomic.make 0 in
  let read pid buf =
    Atomic.incr reads;
    Mutex.lock mu;
    match Hashtbl.find_opt store pid with
    | Some b ->
        Bytes.blit b 0 buf 0 page_size;
        Mutex.unlock mu
    | None ->
        Mutex.unlock mu;
        raise Not_found
  in
  let write pid buf =
    Atomic.incr writes;
    Mutex.lock mu;
    (match Hashtbl.find_opt store pid with
    | Some b -> Bytes.blit buf 0 b 0 page_size
    | None -> Hashtbl.replace store pid (Bytes.sub buf 0 page_size));
    Mutex.unlock mu
  in
  {
    page_size;
    read;
    write;
    sync = (fun () -> ());
    close = (fun () -> ());
    read_count = (fun () -> Atomic.get reads);
    write_count = (fun () -> Atomic.get writes);
  }

let file ~page_size ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let mu = Mutex.create () in
  let reads = Atomic.make 0 and writes = Atomic.make 0 in
  let read pid buf =
    Atomic.incr reads;
    Mutex.lock mu;
    let off = pid * page_size in
    let len = (Unix.fstat fd).Unix.st_size in
    if off + page_size > len then begin
      Mutex.unlock mu;
      raise Not_found
    end;
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    let rec fill pos =
      if pos < page_size then begin
        let n = Unix.read fd buf pos (page_size - pos) in
        if n = 0 then begin
          Mutex.unlock mu;
          raise Not_found
        end;
        fill (pos + n)
      end
    in
    fill 0;
    Mutex.unlock mu;
    (* A hole in the file (all zeroes) means the page was never written. *)
    if Bytes.get_uint16_le buf 0 = 0 then raise Not_found
  in
  let write pid buf =
    Atomic.incr writes;
    Mutex.lock mu;
    ignore (Unix.lseek fd (pid * page_size) Unix.SEEK_SET);
    let rec push pos =
      if pos < page_size then
        let n = Unix.write fd buf pos (page_size - pos) in
        push (pos + n)
    in
    push 0;
    Mutex.unlock mu
  in
  {
    page_size;
    read;
    write;
    sync = (fun () -> Unix.fsync fd);
    close = (fun () -> Unix.close fd);
    read_count = (fun () -> Atomic.get reads);
    write_count = (fun () -> Atomic.get writes);
  }

module Faulty = struct
  type plan = {
    torn_write : float;
    transient_read : float;
    transient_write : float;
    bit_flip : float;
    fail_stop_after : int option;
    protected_pids : int list;
  }

  let no_faults =
    {
      torn_write = 0.0;
      transient_read = 0.0;
      transient_write = 0.0;
      bit_flip = 0.0;
      fail_stop_after = None;
      protected_pids = [];
    }

  type counters = {
    torn_writes : int;
    transient_reads : int;
    transient_writes : int;
    bit_flips : int;
    fail_stops : int;
  }

  type ctl = {
    mu : Mutex.t;
    rng : Rng.t;
    mutable plan : plan;
    mutable ops : int;  (* reads + writes seen, for fail-stop *)
    mutable torn_writes : int;
    mutable transient_reads : int;
    mutable transient_writes : int;
    mutable bit_flips : int;
    mutable fail_stops : int;
  }

  let set_plan ctl plan =
    Mutex.lock ctl.mu;
    ctl.plan <- plan;
    Mutex.unlock ctl.mu

  let plan ctl =
    Mutex.lock ctl.mu;
    let p = ctl.plan in
    Mutex.unlock ctl.mu;
    p

  let counters ctl =
    Mutex.lock ctl.mu;
    let c =
      {
        torn_writes = ctl.torn_writes;
        transient_reads = ctl.transient_reads;
        transient_writes = ctl.transient_writes;
        bit_flips = ctl.bit_flips;
        fail_stops = ctl.fail_stops;
      }
    in
    Mutex.unlock ctl.mu;
    c

  let reset_counters ctl =
    Mutex.lock ctl.mu;
    ctl.torn_writes <- 0;
    ctl.transient_reads <- 0;
    ctl.transient_writes <- 0;
    ctl.bit_flips <- 0;
    ctl.fail_stops <- 0;
    Mutex.unlock ctl.mu

  (* Decide, under [ctl.mu], which fault (if any) this operation suffers.
     Returning the decision and releasing the mutex before touching the
     inner disk keeps the decorator free of lock-order entanglement. *)
  type decision =
    | Pass
    | Fail_stop
    | Transient
    | Torn of int  (* cut offset: bytes [0, cut) reach the medium *)
    | Flip of int  (* bit index to flip in the returned buffer *)

  let decide ctl ~pid ~write ~page_size =
    Mutex.lock ctl.mu;
    ctl.ops <- ctl.ops + 1;
    let p = ctl.plan in
    let protected_ = List.mem pid p.protected_pids in
    let roll rate = rate > 0.0 && Rng.float ctl.rng 1.0 < rate in
    let d =
      match p.fail_stop_after with
      | Some n when ctl.ops > n ->
          ctl.fail_stops <- ctl.fail_stops + 1;
          Fail_stop
      | _ when protected_ -> Pass
      | _ when write && roll p.transient_write ->
          ctl.transient_writes <- ctl.transient_writes + 1;
          Transient
      | _ when write && roll p.torn_write ->
          ctl.torn_writes <- ctl.torn_writes + 1;
          Torn (1 + Rng.int ctl.rng (page_size - 1))
      | _ when (not write) && roll p.transient_read ->
          ctl.transient_reads <- ctl.transient_reads + 1;
          Transient
      | _ when (not write) && roll p.bit_flip ->
          ctl.bit_flips <- ctl.bit_flips + 1;
          Flip (Rng.int ctl.rng (page_size * 8))
      | _ -> Pass
    in
    Mutex.unlock ctl.mu;
    d

  let wrap ?(seed = 0L) ?(plan = no_faults) inner =
    let ctl =
      {
        mu = Mutex.create ();
        rng = Rng.create seed;
        plan;
        ops = 0;
        torn_writes = 0;
        transient_reads = 0;
        transient_writes = 0;
        bit_flips = 0;
        fail_stops = 0;
      }
    in
    let page_size = inner.page_size in
    let read pid buf =
      match decide ctl ~pid ~write:false ~page_size with
      | Fail_stop -> raise (Disk_error { pid; op = "read"; transient = false })
      | Transient -> raise (Disk_error { pid; op = "read"; transient = true })
      | Torn _ -> assert false
      | Pass -> inner.read pid buf
      | Flip bit ->
          inner.read pid buf;
          let byte = bit / 8 in
          Bytes.set buf byte
            (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl (bit mod 8))))
    in
    let write pid buf =
      match decide ctl ~pid ~write:true ~page_size with
      | Fail_stop -> raise (Disk_error { pid; op = "write"; transient = false })
      | Transient -> raise (Disk_error { pid; op = "write"; transient = true })
      | Flip _ -> assert false
      | Pass -> inner.write pid buf
      | Torn cut ->
          (* Only bytes [0, cut) reach the medium; the tail keeps whatever
             durable image existed before (zeroes when none did). *)
          let composite = Bytes.make page_size '\000' in
          (try inner.read pid composite with Not_found -> ());
          Bytes.blit buf 0 composite 0 cut;
          inner.write pid composite;
          raise (Disk_error { pid; op = "torn-write"; transient = false })
    in
    ( {
        page_size;
        read;
        write;
        sync = inner.sync;
        close = inner.close;
        read_count = inner.read_count;
        write_count = inner.write_count;
      },
      ctl )
end
