(** [Pitree_core.Engine.S] over the TSB-tree's {e current} state: [insert]
    stamps a new version, [delete] writes a tombstone (only when the key is
    live, so the boolean matches the other engines), [find] and [scan]
    read as of now. Reads take no locks ([?txn] ignored — the version
    store is the concurrency story here, not record locks). *)

include Pitree_core.Engine.S with type t = Tsb.t

val inst : Tsb.t -> Pitree_core.Engine.instance
