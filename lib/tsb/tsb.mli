(** The TSB-tree (Time-Split B-tree) instance of the Pi-tree
    (paper section 2.2.2, Figure 1; Lomet & Salzberg, SIGMOD '89).

    A multiversion index: every write creates a new {e version} stamped with
    a monotonically increasing tree time; reads can ask for the current
    value or the value {e as of} any past time.

    Structure, exactly as in Figure 1:
    - {b current nodes} form a B-link tree over (key, time) composites and
      are responsible for their key range at {e all} times — recent versions
      directly, older ones through their {b history sibling pointer};
    - a {b time split} moves the node's full contents into a fresh history
      node (prepended to the history chain) and retains only the newest
      version of each key; history nodes are immutable and never split
      again;
    - a {b key split} is the ordinary B-link split (always on a key
      boundary, so one key's versions never straddle current nodes); the
      new current node receives {e copies of the old history pointer and
      the old key pointer}, making it responsible for the entire history of
      its key space.

    Concurrency and recovery follow the same Pi-tree protocol as the B-link
    engine: splits are independent atomic actions; index-term posting for
    key splits is a separate, lazily-completable atomic action; time splits
    change no parent, so they complete in one action. The engine runs under
    the CNS invariant — traversals never meet a consolidation — which the
    quiesced {!gc} maintenance pass preserves by draining expired history
    and merging emptied leaves only while writers are stopped. *)

type t

val create : Pitree_env.Env.t -> name:string -> t
val open_existing : Pitree_env.Env.t -> name:string -> t option
val env : t -> Pitree_env.Env.t

val tree_id : t -> int
(** Root page id — the identifier {!Pitree_txn.Mvcc} keys this tree's
    version-store vtable and buffered SI writes by. *)

(** {2 Writes} — each returns the version's timestamp. *)

val put : ?txn:Pitree_txn.Txn.t -> t -> key:string -> value:string -> int
(** Without [?txn] and with [Env.config.combine] on, the put routes
    through the hot-key combining funnel: concurrent writers hashing to
    the same slot share one transaction and one WAL flush enrollment,
    and each gets back the timestamp the leader's batch assigned to it.
    A batch that cannot complete (lock cycle, split pressure) hands the
    request back to the ordinary one-put-one-txn path. *)

val remove : ?txn:Pitree_txn.Txn.t -> t -> string -> int
(** Writes a deletion tombstone (the key's history remains queryable). *)

val now : t -> int
(** The latest timestamp issued. *)

(** {2 Reads} *)

val get : t -> string -> string option
(** Current value ([None] if never written or tombstoned). *)

val get_asof : t -> string -> time:int -> string option
(** The value visible at [time] (inclusive). *)

val history : t -> string -> (int * string option) list
(** All versions of a key, oldest first; [None] marks a tombstone.
    Versions in history slices drained by {!gc} are gone. *)

val range_asof :
  t -> time:int -> ?low:string -> ?high:string -> init:'a ->
  f:('a -> string -> string -> 'a) -> 'a
(** Snapshot scan: fold over the keys with a live value as of [time]. *)

(** {2 Garbage collection}

    The TSB-tree retains every version forever by default. A GC horizon
    bounds that: [set_horizon t h] declares that no future read will ask
    for a time at or below [h], and {!gc} reclaims what such reads can no
    longer reach — fully-expired history-chain tails are cut and their
    nodes freed onto the environment free list; version runs ending in a
    sufficiently old tombstone are purged from drained current leaves;
    leaves left empty with no history are merged into their containing
    (left) sibling and freed, the inverse of a key split. Every step is
    its own atomic action, so a crash anywhere leaves a searchable,
    recoverable tree (crash points [tsb.drain.cut], [tsb.drain.freed],
    [tsb.merge.unlinked], [tsb.merge.freed]).

    [gc] is a maintenance pass: callers must quiesce writers on this tree
    while it runs (concurrent readers are safe). *)

val set_horizon : t -> int -> unit
(** Raise the GC horizon (monotone; lowering is ignored). *)

val horizon : t -> int

val gc : t -> int
(** Drain, purge and merge per the module contract above; returns the
    number of pages freed. *)

(** {2 Inspection} *)

val verify : t -> Pitree_core.Wellformed.report
(** Well-formedness of the current-node B-link structure over the composite
    key space, plus history-chain sanity (time slices ordered and
    contiguous). Chain defects are reported as condition-2 errors. *)

type stats = {
  puts : int;
  time_splits : int;
  key_splits : int;
  root_splits : int;
  history_nodes : int;  (** created since open *)
  side_traversals : int;
  postings_completed : int;
  history_nodes_freed : int;  (** chain-tail nodes freed by {!gc} *)
  tombstones_purged : int;  (** entries dropped from drained leaves by {!gc} *)
  merges : int;  (** empty leaves merged away (and freed) by {!gc} *)
}

val stats : t -> stats
