(* The TSB-tree behind [Pitree_core.Engine.S]: the engine interface sees
   the current state only — [insert] stamps a new version, [delete] a
   tombstone, [find]/[scan] read as of now. The version store underneath
   (history chains, as-of reads) stays reachable through [Tsb] directly.

   When the transaction carries snapshot-isolation state (opened with
   [Mvcc.begin_snapshot]), every operation dispatches through the
   snapshot instead: reads are as-of reads at the pinned read timestamp
   overlaid with the transaction's own buffered writes — no lock-manager
   calls, no latch waits on the OLC path — and writes only buffer; the
   version store is untouched until commit. *)

module Engine = Pitree_core.Engine
module Mvcc = Pitree_txn.Mvcc
module Env = Pitree_env.Env

module Impl = struct
  type t = Tsb.t

  let engine_name = "tsb-tree"

  (* The transaction's SI state, validated against the current allocator
     (a snapshot that straddled a crash raises Stale_snapshot here). *)
  let si_of t txn =
    match txn with
    | None -> None
    | Some txn -> (
        match Mvcc.si_of txn with
        | None -> None
        | Some si ->
            Mvcc.check_current (Env.txns (Tsb.env t)) si;
            Some si)

  let insert ?txn t ~key ~value =
    match si_of t txn with
    | Some si -> Mvcc.buffer_write si ~tree:(Tsb.tree_id t) ~key (Some value)
    | None -> ignore (Tsb.put ?txn t ~key ~value : int)

  let find ?txn t key =
    match si_of t txn with
    | Some si -> (
        Mvcc.note_read si;
        match Mvcc.buffered si ~tree:(Tsb.tree_id t) ~key with
        | Some v -> v
        | None -> Tsb.get_asof t key ~time:(Mvcc.read_time si))
    | None -> Tsb.get t key

  (* A tombstone for an absent key would create a version of nothing;
     mirror the other engines' contract instead: write the tombstone only
     when the key is currently live, and report whether it was. Under SI,
     "currently" means as of the snapshot (plus own writes), and the
     tombstone only buffers. *)
  let delete ?txn t key =
    match si_of t txn with
    | Some si ->
        let tree = Tsb.tree_id t in
        Mvcc.note_read si;
        let live =
          match Mvcc.buffered si ~tree ~key with
          | Some v -> v <> None
          | None -> Tsb.get_asof t key ~time:(Mvcc.read_time si) <> None
        in
        if live then Mvcc.buffer_write si ~tree ~key None;
        live
    | None -> (
        match Tsb.get t key with
        | None -> false
        | Some _ ->
            ignore (Tsb.remove ?txn t key : int);
            true)

  exception Done of int

  let scan ?txn t ~low ~n =
    if n <= 0 then 0
    else
      match si_of t txn with
      | Some si ->
          (* Snapshot scan overlaid with the write buffer: buffered
             inserts join the key set, buffered tombstones leave it. *)
          let module SS = Set.Make (String) in
          Mvcc.note_read si;
          let base =
            Tsb.range_asof t ~time:(Mvcc.read_time si) ~low ?high:None
              ~init:SS.empty
              ~f:(fun acc k _ -> SS.add k acc)
          in
          let keys =
            List.fold_left
              (fun acc (k, v) ->
                if String.compare k low >= 0 then
                  match v with Some _ -> SS.add k acc | None -> SS.remove k acc
                else acc)
              base
              (Mvcc.writes_for si ~tree:(Tsb.tree_id t))
          in
          min n (SS.cardinal keys)
      | None -> (
          try
            Tsb.range_asof t ~time:(Tsb.now t) ~low ?high:None ~init:0
              ~f:(fun acc _ _ ->
                if acc + 1 >= n then raise (Done (acc + 1)) else acc + 1)
          with Done c -> c)
end

include Impl

let inst t = Engine.Inst ((module Impl), t)
