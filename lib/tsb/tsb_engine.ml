(* The TSB-tree behind [Pitree_core.Engine.S]: the engine interface sees
   the current state only — [insert] stamps a new version, [delete] a
   tombstone, [find]/[scan] read as of now. The version store underneath
   (history chains, as-of reads) stays reachable through [Tsb] directly. *)

module Engine = Pitree_core.Engine

module Impl = struct
  type t = Tsb.t

  let engine_name = "tsb-tree"
  let insert ?txn t ~key ~value = ignore (Tsb.put ?txn t ~key ~value : int)

  (* A tombstone for an absent key would create a version of nothing;
     mirror the other engines' contract instead: write the tombstone only
     when the key is currently live, and report whether it was. *)
  let delete ?txn t key =
    match Tsb.get t key with
    | None -> false
    | Some _ ->
        ignore (Tsb.remove ?txn t key : int);
        true

  let find ?txn:_ t key = Tsb.get t key

  exception Done of int

  let scan ?txn:_ t ~low ~n =
    if n <= 0 then 0
    else
      try
        Tsb.range_asof t ~time:(Tsb.now t) ~low ?high:None ~init:0
          ~f:(fun acc _ _ ->
            if acc + 1 >= n then raise (Done (acc + 1)) else acc + 1)
      with Done c -> c
end

include Impl

let inst t = Engine.Inst ((module Impl), t)
