module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Olc = Pitree_storage.Olc
module Latch = Pitree_sync.Latch
module Page_op = Pitree_wal.Page_op
module Lsn = Pitree_wal.Lsn
module Log_record = Pitree_wal.Log_record
module Log_manager = Pitree_wal.Log_manager
module Logical = Pitree_wal.Logical
module Lock_mode = Pitree_lock.Lock_mode
module Lock_manager = Pitree_lock.Lock_manager
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Snapshot = Pitree_txn.Snapshot
module Mvcc = Pitree_txn.Mvcc
module Atomic_action = Pitree_txn.Atomic_action
module Crash_point = Pitree_util.Crash_point
module Env = Pitree_env.Env
module Wellformed = Pitree_core.Wellformed
module Keyspace = Pitree_core.Keyspace
module Ordkey = Pitree_util.Ordkey
module Bnode = Pitree_blink.Node
module Combine = Pitree_combine.Combine

(* Every Crash_point.hit site in this engine, pre-registered so sweep
   harnesses can enumerate them before any fires. *)
let () =
  List.iter Crash_point.register
    [
      "tsb.timesplit.linked";
      "tsb.keysplit.linked";
      "tsb.drain.cut";
      "tsb.drain.freed";
      "tsb.merge.unlinked";
      "tsb.merge.freed";
    ]

type stats = {
  puts : int;
  time_splits : int;
  key_splits : int;
  root_splits : int;
  history_nodes : int;
  side_traversals : int;
  postings_completed : int;
  history_nodes_freed : int;
  tombstones_purged : int;
  merges : int;
}

(* What a combined put gets back: the version timestamp the leader's
   batch assigned to it, or a handback when the batch aborted (lock
   conflict past the deadlock detector, split pressure, ...) — the caller
   retries on the direct path. *)
type comb_res = Applied of int | Handback

type t = {
  env : Env.t;
  name : string;
  root : int;
  mutable combiner : (string * string, comb_res) Combine.t option;
  clock : int Atomic.t;
  horizon : int Atomic.t;
  c_puts : int Atomic.t;
  c_time_splits : int Atomic.t;
  c_key_splits : int Atomic.t;
  c_root_splits : int Atomic.t;
  c_history_nodes : int Atomic.t;
  c_side : int Atomic.t;
  c_posted : int Atomic.t;
  c_drained : int Atomic.t;
  c_purged : int Atomic.t;
  c_merges : int Atomic.t;
  pending : (int, unit) Hashtbl.t;
  pending_mu : Mutex.t;
  gc_mu : Mutex.t;
}

let env t = t.env
let tree_id t = t.root

let pool t = Env.pool t.env
let mgr t = Env.txns t.env
let locks t = Env.locks t.env

let si_enabled t = (Env.config t.env).Env.si_txns
let snap t = Txn_mgr.snapshots (mgr t)

(* Allocate the next version timestamp. Under snapshot isolation every
   stamp — user writes and structural time splits alike — comes from the
   transaction manager's commit-ts allocator and is tracked for
   retirement, so the snapshot watermark cannot advance past a
   still-uncommitted version. The per-tree clock is CAS-maxed along so
   [now] and the clock-only paths stay monotone. *)
let alloc_ts t txn =
  if si_enabled t then begin
    let ts = Snapshot.allocate (snap t) in
    Txn.track_ts txn ts;
    let rec bump () =
      let c = Atomic.get t.clock in
      if ts + 1 > c && not (Atomic.compare_and_set t.clock c (ts + 1)) then
        bump ()
    in
    bump ();
    ts
  end
  else Atomic.fetch_and_add t.clock 1

let pin t pid = Buffer_pool.pin (pool t) pid
let unpin t fr = Buffer_pool.unpin (pool t) fr
let page fr = fr.Buffer_pool.page
let latch fr m = Latch.acquire fr.Buffer_pool.latch m
let unlatch fr m = Latch.release fr.Buffer_pool.latch m
let promote fr = Latch.promote fr.Buffer_pool.latch
let update t txn fr op = ignore (Txn_mgr.update (mgr t) txn fr op)

let is_history p = Page.flags p land Tnode.history_flag <> 0

let dummy_time = Tnode.time_cell { Tnode.t_low = 0; t_high = None }

(* ---------- traversal (CNS: one latch at a time) ---------- *)

let post_action :
    (t -> level:int -> address:int -> key:string -> unit) ref =
  ref (fun _ ~level:_ ~address:_ ~key:_ -> assert false)

let maybe_schedule_posting t ~level ~sibling ~key =
  Mutex.lock t.pending_mu;
  let fresh = not (Hashtbl.mem t.pending sibling) in
  if fresh then Hashtbl.replace t.pending sibling ();
  Mutex.unlock t.pending_mu;
  if fresh then
    Env.schedule t.env (fun () ->
        Mutex.lock t.pending_mu;
        Hashtbl.remove t.pending sibling;
        Mutex.unlock t.pending_mu;
        !post_action t ~level:(level + 1) ~address:sibling ~key)

let rec side_step t ~ckey ~m fr =
  let p = page fr in
  if Tnode.contains p ckey then fr
  else begin
    Atomic.incr t.c_side;
    let sib = Page.side_ptr p in
    assert (sib <> Page.nil);
    maybe_schedule_posting t ~level:(Page.level p) ~sibling:sib ~key:ckey;
    let sfr = pin t sib in
    unlatch fr m;
    unpin t fr;
    latch sfr m;
    side_step t ~ckey ~m sfr
  end

(* Descend by composite key to [target] level; CNS single-latch. *)
let rec descend_from t ~ckey ~target ~mode fr =
  let p = page fr in
  let level = Page.level p in
  let m = if level > target then Latch.S else mode in
  let fr = side_step t ~ckey ~m fr in
  let p = page fr in
  if level = target then fr
  else begin
    let i =
      match Tnode.floor_entry p ckey with
      | Some i -> i
      | None -> assert false
    in
    let _, child = Tnode.index_term p i in
    let cfr = pin t child in
    unlatch fr m;
    unpin t fr;
    latch cfr (if level - 1 > target then Latch.S else mode);
    descend_from t ~ckey ~target ~mode cfr
  end

let rec descend t ~ckey ~target ~mode =
  let fr = pin t t.root in
  let above = Page.level (page fr) > target in
  let m = if above then Latch.S else mode in
  latch fr m;
  if Page.level (page fr) > target <> above then begin
    unlatch fr m;
    unpin t fr;
    descend t ~ckey ~target ~mode
  end
  else descend_from t ~ckey ~target ~mode fr

(* ---------- optimistic (latch-free) descent ----------

   Same read-validate-retry protocol as Pitree_blink (see the section
   comment there and Pitree_storage.Olc), simplified by the TSB-tree's
   CNS discipline: nodes are immortal, so a validated pointer can be
   de-referenced without re-validating the parent after the pin — a
   stale (post-split) child is recovered by side-stepping, exactly as in
   the latched single-latch descent above. *)

let olc_enabled t = (Env.config t.env).Env.olc_reads

(* Descend pinned-only to the current node directly containing [ckey];
   returns it pinned with a validated version-word snapshot. Owns [fr]'s
   pin: every exit, including every raise, drops every pin held. *)
let rec olc_step t ~ckey fr =
  match
    let v = Olc.snapshot fr in
    let p = page fr in
    (* A stale pointer can land on a page the GC drain/merge already
       freed: a transient state of the optimistic protocol — restart. *)
    Olc.live p;
    (* Routing reads parse unvalidated bytes; [Olc.decoding] restarts a
       decode blow-up only when the version word proves them torn. *)
    Olc.decoding fr v @@ fun () ->
    if not (Tnode.contains p ckey) then begin
      let sib = Page.side_ptr p in
      let level = Page.level p in
      Olc.validate fr v;
      if sib = Page.nil then raise Olc.Restart;
      `Side (sib, level)
    end
    else if Page.level p = 0 then begin
      Olc.validate fr v;
      `Leaf v
    end
    else
      match Tnode.floor_entry p ckey with
      | None -> raise Olc.Restart
      | Some i ->
          let _, child = Tnode.index_term p i in
          Olc.validate fr v;
          `Child child
  with
  | exception e ->
      unpin t fr;
      raise e
  | `Leaf v -> (fr, v)
  | `Side (sib, level) ->
      Atomic.incr t.c_side;
      (* Validated side chase: the pid and level are proven un-torn. *)
      maybe_schedule_posting t ~level ~sibling:sib ~key:ckey;
      let sfr =
        match pin t sib with
        | sfr -> sfr
        | exception e ->
            unpin t fr;
            raise e
      in
      unpin t fr;
      olc_step t ~ckey sfr
  | `Child child ->
      let cfr =
        match pin t child with
        | cfr -> cfr
        | exception e ->
            unpin t fr;
            raise e
      in
      unpin t fr;
      olc_step t ~ckey cfr

(* ---------- splits ---------- *)

(* Alive = the newest version of each user key in this node (tombstones
   included: they mask older versions). Entry i is alive iff it is the last
   entry of its key's contiguous run. *)
let alive_flags p =
  let n = Tnode.entry_count p in
  Array.init n (fun i ->
      if i = n - 1 then true
      else
        let k, _ = Ordkey.decompose (Tnode.entry_key p i) in
        let k', _ = Ordkey.decompose (Tnode.entry_key p (i + 1)) in
        not (String.equal k k'))

(* Time split (section 2.2.2): the node's entire contents go to a fresh
   history node prepended to the history chain; the current node keeps only
   alive versions and a raised t_low. One atomic action, no index change. *)
let time_split t txn fr =
  let p = page fr in
  let ts = alloc_ts t txn in
  let n = Tnode.entry_count p in
  let tc = Tnode.time_of p in
  let hfr = Env.alloc_page t.env txn ~kind:Page.Data ~level:0 in
  update t txn hfr (Page_op.Insert_slot { slot = 0; cell = Page.get p 0 });
  update t txn hfr
    (Page_op.Insert_slot
       {
         slot = 1;
         cell = Tnode.time_cell { Tnode.t_low = tc.Tnode.t_low; t_high = Some ts };
       });
  for i = 0 to n - 1 do
    update t txn hfr
      (Page_op.Insert_slot
         { slot = Tnode.slot_of_entry i; cell = Page.get p (Tnode.slot_of_entry i) })
  done;
  update t txn hfr
    (Page_op.Set_flags { old_flags = 0; new_flags = Tnode.history_flag });
  if Page.aux_ptr p <> Page.nil then
    update t txn hfr
      (Page_op.Set_aux_ptr { old_ptr = Page.nil; new_ptr = Page.aux_ptr p });
  (* Trim the current node to its alive versions and link the history
     node. *)
  let alive = alive_flags p in
  for i = n - 1 downto 0 do
    if not alive.(i) then
      update t txn fr
        (Page_op.Delete_slot
           { slot = Tnode.slot_of_entry i; cell = Page.get p (Tnode.slot_of_entry i) })
  done;
  update t txn fr
    (Page_op.Replace_slot
       {
         slot = 1;
         old_cell = Tnode.time_cell tc;
         new_cell = Tnode.time_cell { Tnode.t_low = ts; t_high = None };
       });
  update t txn fr
    (Page_op.Set_aux_ptr { old_ptr = Page.aux_ptr p; new_ptr = Page.id (page hfr) });
  Atomic.incr t.c_time_splits;
  Atomic.incr t.c_history_nodes;
  Crash_point.hit "tsb.timesplit.linked";
  unpin t hfr

(* Snap a split entry index to the start of its user key's version run;
   returns None when the node holds a single key. *)
let key_boundary p s =
  let n = Tnode.entry_count p in
  let user i = fst (Ordkey.decompose (Tnode.entry_key p i)) in
  let rec back i = if i > 0 && String.equal (user i) (user (i - 1)) then back (i - 1) else i in
  let s = back (max 1 (min s (n - 1))) in
  if s > 0 then Some s
  else
    let k0 = user 0 in
    let rec fwd i = if i < n && String.equal (user i) k0 then fwd (i + 1) else i in
    let s = fwd 1 in
    if s < n then Some s else None

(* Key split: the ordinary B-link split over composite keys, on a key
   boundary, copying BOTH the key sibling pointer and the history sibling
   pointer into the new node (Figure 1). Returns (sep, sibling pid) or None
   if the node cannot key-split. *)
let key_split t txn fr =
  let p = page fr in
  let n = Tnode.entry_count p in
  if n < 2 then None
  else
    match key_boundary p (Tnode.split_point p) with
    | None -> None
    | Some s ->
        let user_key = fst (Ordkey.decompose (Tnode.entry_key p s)) in
        let sep = Ordkey.composite user_key 0 in
        let f = Tnode.fence p in
        let qfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
        update t txn qfr
          (Page_op.Insert_slot
             {
               slot = 0;
               cell =
                 Tnode.fence_cell
                   { Bnode.low = Some sep; high = f.Bnode.high; resp_high = f.Bnode.resp_high };
             });
        update t txn qfr (Page_op.Insert_slot { slot = 1; cell = Page.get p 1 });
        for i = s to n - 1 do
          update t txn qfr
            (Page_op.Insert_slot
               {
                 slot = Tnode.slot_of_entry (i - s);
                 cell = Page.get p (Tnode.slot_of_entry i);
               })
        done;
        if Page.side_ptr p <> Page.nil then
          update t txn qfr
            (Page_op.Set_side_ptr { old_ptr = Page.nil; new_ptr = Page.side_ptr p });
        (* The copy of the history pointer makes the new node responsible
           for the entire history of its key space (Figure 1). *)
        if Page.aux_ptr p <> Page.nil then
          update t txn qfr
            (Page_op.Set_aux_ptr { old_ptr = Page.nil; new_ptr = Page.aux_ptr p });
        for i = n - 1 downto s do
          update t txn fr
            (Page_op.Delete_slot
               { slot = Tnode.slot_of_entry i; cell = Page.get p (Tnode.slot_of_entry i) })
        done;
        update t txn fr
          (Page_op.Replace_slot
             {
               slot = 0;
               old_cell = Tnode.fence_cell f;
               new_cell =
                 Tnode.fence_cell
                   { Bnode.low = f.Bnode.low; high = Some sep; resp_high = f.Bnode.resp_high };
             });
        update t txn fr
          (Page_op.Set_side_ptr { old_ptr = Page.side_ptr p; new_ptr = Page.id (page qfr) });
        Atomic.incr t.c_key_splits;
        Crash_point.hit "tsb.keysplit.linked";
        let qpid = Page.id (page qfr) in
        unpin t qfr;
        Some (sep, qpid)

(* Root growth: contents (and, for a leaf root, the history pointer) move
   down to a fresh left child; the immovable root becomes an index node. *)
let grow_root t txn fr ~sep ~right =
  let p = page fr in
  let lfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
  let n = Tnode.entry_count p in
  update t txn lfr (Page_op.Insert_slot { slot = 0; cell = Page.get p 0 });
  update t txn lfr (Page_op.Insert_slot { slot = 1; cell = Page.get p 1 });
  for i = 0 to n - 1 do
    update t txn lfr
      (Page_op.Insert_slot
         { slot = Tnode.slot_of_entry i; cell = Page.get p (Tnode.slot_of_entry i) })
  done;
  update t txn lfr
    (Page_op.Set_side_ptr { old_ptr = Page.nil; new_ptr = right });
  if Page.aux_ptr p <> Page.nil then begin
    update t txn lfr
      (Page_op.Set_aux_ptr { old_ptr = Page.nil; new_ptr = Page.aux_ptr p });
    update t txn fr
      (Page_op.Set_aux_ptr { old_ptr = Page.aux_ptr p; new_ptr = Page.nil })
  end;
  let cells = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
  update t txn fr (Page_op.Clear { cells = List.rev cells });
  update t txn fr
    (Page_op.Set_side_ptr { old_ptr = Page.side_ptr p; new_ptr = Page.nil });
  update t txn fr
    (Page_op.Reformat
       {
         old_kind = Page.kind p;
         new_kind = Page.Index;
         old_level = Page.level p;
         new_level = Page.level p + 1;
       });
  update t txn fr
    (Page_op.Insert_slot { slot = 0; cell = Tnode.fence_cell Bnode.whole_fence });
  update t txn fr (Page_op.Insert_slot { slot = 1; cell = dummy_time });
  update t txn fr
    (Page_op.Insert_slot
       { slot = 2; cell = Tnode.index_term_cell ~sep:"" ~child:(Page.id (page lfr)) });
  update t txn fr
    (Page_op.Insert_slot { slot = 3; cell = Tnode.index_term_cell ~sep ~child:right });
  Atomic.incr t.c_root_splits;
  unpin t lfr

(* Make room in the full leaf that owns [ckey]. One atomic action; re-tests
   state after re-descending (idempotent completion discipline). *)
let split_current t ~ckey ~need =
  Atomic_action.run (mgr t) (fun txn ->
      let fr = descend t ~ckey ~target:0 ~mode:Latch.U in
      let p = page fr in
      if Page.will_fit p (need + Page.slot_overhead) then begin
        unlatch fr Latch.U;
        unpin t fr
      end
      else begin
        promote fr;
        let n = Tnode.entry_count p in
        let alive = alive_flags p in
        let dead_bytes =
          let acc = ref 0 in
          for i = 0 to n - 1 do
            if not alive.(i) then
              acc := !acc + String.length (Page.get p (Tnode.slot_of_entry i))
          done;
          !acc
        in
        let garbage_heavy = 2 * dead_bytes >= Page.used_space p - dead_bytes in
        let hopeless = ref false in
        if garbage_heavy && dead_bytes > 0 then time_split t txn fr
        else begin
          match key_split t txn fr with
          | Some (sep, q) ->
              if Page.id p = t.root then grow_root t txn fr ~sep ~right:q
              else
                Txn.add_on_commit txn (fun () ->
                    maybe_schedule_posting t ~level:0 ~sibling:q ~key:sep)
          | None ->
              if n >= 1 && dead_bytes > 0 then time_split t txn fr
              else
                (* A lone alive version plus the incoming one exceed the
                   page. A time split cannot trim alive versions and a key
                   split needs a second key, so no split makes progress:
                   the record is too large for this page size. Fail loudly
                   rather than looping (each futile time split would leak a
                   history node). *)
                hopeless := true
        end;
        unlatch fr Latch.X;
        unpin t fr;
        if !hopeless then raise Page.Page_full
      end)

(* ---------- index posting (section 5.3, simplified search) ---------- *)

let index_need sep = String.length (Tnode.index_term_cell ~sep ~child:0)

let rec ensure_space_index t txn fr ~poskey ~need =
  let p = page fr in
  if Page.will_fit p (need + Page.slot_overhead) then fr
  else if Page.id p = t.root then begin
    match index_split t txn fr with
    | None -> failwith "tsb: cannot split index root"
    | Some (sep, q) ->
        grow_root t txn fr ~sep ~right:q;
        (* Re-descend one level. *)
        let child =
          if String.compare poskey sep < 0 then
            let _, c = Tnode.index_term p 0 in
            c
          else q
        in
        let cfr = pin t child in
        latch cfr Latch.X;
        unlatch fr Latch.X;
        unpin t fr;
        ensure_space_index t txn cfr ~poskey ~need
  end
  else
    match index_split t txn fr with
    | None -> failwith "tsb: cannot split index node"
    | Some (sep, q) ->
        maybe_schedule_posting t ~level:(Page.level p) ~sibling:q ~key:sep;
        if String.compare poskey sep < 0 then
          ensure_space_index t txn fr ~poskey ~need
        else begin
          let qfr = pin t q in
          latch qfr Latch.X;
          unlatch fr Latch.X;
          unpin t fr;
          ensure_space_index t txn qfr ~poskey ~need
        end

(* Index-node split over composites: same as key_split but without history
   pointers and with arbitrary separators. *)
and index_split t txn fr =
  let p = page fr in
  let n = Tnode.entry_count p in
  if n < 2 then None
  else begin
    let s = Tnode.split_point p in
    let sep = Tnode.entry_key p s in
    let f = Tnode.fence p in
    let qfr = Env.alloc_page t.env txn ~kind:Page.Index ~level:(Page.level p) in
    update t txn qfr
      (Page_op.Insert_slot
         {
           slot = 0;
           cell =
             Tnode.fence_cell
               { Bnode.low = Some sep; high = f.Bnode.high; resp_high = f.Bnode.resp_high };
         });
    update t txn qfr (Page_op.Insert_slot { slot = 1; cell = dummy_time });
    for i = s to n - 1 do
      update t txn qfr
        (Page_op.Insert_slot
           { slot = Tnode.slot_of_entry (i - s); cell = Page.get p (Tnode.slot_of_entry i) })
    done;
    if Page.side_ptr p <> Page.nil then
      update t txn qfr
        (Page_op.Set_side_ptr { old_ptr = Page.nil; new_ptr = Page.side_ptr p });
    for i = n - 1 downto s do
      update t txn fr
        (Page_op.Delete_slot
           { slot = Tnode.slot_of_entry i; cell = Page.get p (Tnode.slot_of_entry i) })
    done;
    update t txn fr
      (Page_op.Replace_slot
         {
           slot = 0;
           old_cell = Tnode.fence_cell f;
           new_cell =
             Tnode.fence_cell
               { Bnode.low = f.Bnode.low; high = Some sep; resp_high = f.Bnode.resp_high };
         });
    update t txn fr
      (Page_op.Set_side_ptr { old_ptr = Page.side_ptr p; new_ptr = Page.id (page qfr) });
    Atomic.incr t.c_key_splits;
    let qpid = Page.id (page qfr) in
    unpin t qfr;
    Some (sep, qpid)
  end

let do_post_action t ~level ~address ~key =
  Atomic_action.run (mgr t) (fun txn ->
      let fr = descend t ~ckey:key ~target:level ~mode:Latch.U in
      if Tnode.find_child_term (page fr) address <> None then begin
        unlatch fr Latch.U;
        unpin t fr
      end
      else begin
        match Tnode.floor_entry (page fr) key with
        | None ->
            unlatch fr Latch.U;
            unpin t fr
        | Some i ->
            let _, child = Tnode.index_term (page fr) i in
            let cfr = pin t child in
            latch cfr Latch.S;
            let cp = page cfr in
            if Tnode.contains cp key then begin
              unlatch cfr Latch.S;
              unpin t cfr;
              unlatch fr Latch.U;
              unpin t fr
            end
            else begin
              let sib = Page.side_ptr cp in
              let sep =
                match (Tnode.fence cp).Bnode.high with
                | Some h -> h
                | None -> assert false
              in
              unlatch cfr Latch.S;
              unpin t cfr;
              if Tnode.find_child_term (page fr) sib <> None then begin
                unlatch fr Latch.U;
                unpin t fr
              end
              else begin
                promote fr;
                let fr =
                  ensure_space_index t txn fr ~poskey:sep ~need:(index_need sep)
                in
                (match Tnode.find (page fr) sep with
                | `Found _ -> ()
                | `Not_found j ->
                    update t txn fr
                      (Page_op.Insert_slot
                         {
                           slot = Tnode.slot_of_entry j;
                           cell = Tnode.index_term_cell ~sep ~child:sib;
                         });
                    Atomic.incr t.c_posted);
                unlatch fr Latch.X;
                unpin t fr
              end
            end
      end)

let () = ()

(* ---------- creation / registration ---------- *)

let record_res t key = Lock_manager.Record { tree = t.root; key }

let logical_undo t ~comp ~txn ~prev ~undo_next =
  let ckey =
    match comp with
    | Logical.Remove { key } -> key
    | Logical.Put { cell } -> fst (Bnode.entry_of_cell cell)
  in
  let fr = descend t ~ckey ~target:0 ~mode:Latch.U in
  let p = page fr in
  let apply_clr op =
    (* Dirty (and log the full-page image) before the CLR is appended:
       the image must precede every record it covers. *)
    Buffer_pool.mark_dirty fr;
    let lsn =
      Log_manager.append (Env.log t.env) ~prev ~txn:txn
        (Log_record.Clr { page = Page.id p; op; undo_next })
    in
    Page_op.redo p op;
    Page.set_lsn p lsn;
    lsn
  in
  let r =
    match comp with
    | Logical.Remove _ -> (
        match Tnode.find p ckey with
        | `Found i ->
            promote fr;
            let cell = Page.get p (Tnode.slot_of_entry i) in
            let lsn =
              apply_clr (Page_op.Delete_slot { slot = Tnode.slot_of_entry i; cell })
            in
            unlatch fr Latch.X;
            unpin t fr;
            lsn
        | `Not_found _ ->
            unlatch fr Latch.U;
            unpin t fr;
            Lsn.null)
    | Logical.Put { cell } -> (
        match Tnode.find p ckey with
        | `Found _ ->
            unlatch fr Latch.U;
            unpin t fr;
            Lsn.null
        | `Not_found i ->
            promote fr;
            let lsn =
              apply_clr (Page_op.Insert_slot { slot = Tnode.slot_of_entry i; cell })
            in
            unlatch fr Latch.X;
            unpin t fr;
            lsn)
  in
  r

let attach env ~name ~root =
  let t =
    {
      env;
      name;
      root;
      combiner = None;
      clock = Atomic.make 1;
      horizon = Atomic.make 0;
      c_puts = Atomic.make 0;
      c_time_splits = Atomic.make 0;
      c_key_splits = Atomic.make 0;
      c_root_splits = Atomic.make 0;
      c_history_nodes = Atomic.make 0;
      c_side = Atomic.make 0;
      c_posted = Atomic.make 0;
      c_drained = Atomic.make 0;
      c_purged = Atomic.make 0;
      c_merges = Atomic.make 0;
      pending = Hashtbl.create 16;
      pending_mu = Mutex.create ();
      gc_mu = Mutex.create ();
    }
  in
  Logical.register_tree root (fun ~tree:_ ~comp ~txn ~prev ~undo_next ->
      logical_undo t ~comp ~txn ~prev ~undo_next);
  t

(* The tree clock must move past every timestamp ever issued; scan the
   current leaf level for the maximum on open. Structural stamps (time
   splits) may exceed every entry stamp, but a time split raises the
   current node's t_low to its stamp, so scanning both entry stamps and
   time-cell floors covers them. *)
let recover_clock t =
  let rec leftmost fr =
    let p = page fr in
    if Page.level p = 0 then fr
    else begin
      let _, child = Tnode.index_term p 0 in
      let cfr = pin t child in
      unpin t fr;
      leftmost cfr
    end
  in
  let rec walk fr acc =
    let p = page fr in
    let acc =
      let m = ref acc in
      for i = 0 to Tnode.entry_count p - 1 do
        let _, time = Ordkey.decompose (Tnode.entry_key p i) in
        if time > !m then m := time
      done;
      let tl = (Tnode.time_of p).Tnode.t_low in
      if tl > !m then m := tl;
      !m
    in
    let sib = Page.side_ptr p in
    unpin t fr;
    if sib = Page.nil then acc else walk (pin t sib) acc
  in
  let top = pin t t.root in
  let max_time = walk (leftmost top) 0 in
  Atomic.set t.clock (max_time + 1);
  (* Under SI the allocator, not the tree clock, is the stamp source;
     push it past everything this tree ever issued. *)
  if si_enabled t then Snapshot.observe_floor (snap t) max_time

(* Combiner construction and the Mvcc vtable need the read/write paths
   below; wired up after they are defined. *)
let attach_combiner_fwd : (t -> unit) ref = ref (fun _ -> ())
let register_mvcc_fwd : (t -> unit) ref = ref (fun _ -> ())

let create env ~name =
  let root = Env.create_tree env ~name:("tsb:" ^ name) ~kind:Page.Data ~level:0 in
  let t = attach env ~name ~root in
  !attach_combiner_fwd t;
  !register_mvcc_fwd t;
  Atomic_action.run (mgr t) (fun txn ->
      let fr = pin t root in
      latch fr Latch.X;
      update t txn fr
        (Page_op.Insert_slot { slot = 0; cell = Tnode.fence_cell Bnode.whole_fence });
      update t txn fr
        (Page_op.Insert_slot
           { slot = 1; cell = Tnode.time_cell { Tnode.t_low = 0; t_high = None } });
      unlatch fr Latch.X;
      unpin t fr);
  t

let open_existing env ~name =
  match Env.find_tree env ~name:("tsb:" ^ name) with
  | None -> None
  | Some root ->
      let t = attach env ~name ~root in
      recover_clock t;
      !attach_combiner_fwd t;
      !register_mvcc_fwd t;
      Some t

(* ---------- writes ---------- *)

let with_autocommit t txn f =
  match txn with
  | Some txn -> f txn
  | None ->
      let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
      (match f txn with
      | v ->
          Txn_mgr.commit (mgr t) txn;
          ignore (Env.drain t.env);
          v
      | exception (Crash_point.Crash_requested _ as e) -> raise e
      | exception e ->
          if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
          raise e)

let write_version ?time t txn ~key version =
  (* [time] is given only by Mvcc's commit-time install: the whole SI
     write set shares one already-allocated (and tracked) timestamp. *)
  let time = match time with Some ts -> ts | None -> alloc_ts t txn in
  let ckey = Ordkey.composite key time in
  let cell = Tnode.version_cell ~composite:ckey version in
  let rec attempt tries =
    if tries > 200 then failwith "tsb.put: too many restarts";
    let fr = descend t ~ckey ~target:0 ~mode:Latch.U in
    let p = page fr in
    if
      not
        (Lock_manager.try_acquire (locks t) ~owner:txn.Txn.id (record_res t key)
           Lock_mode.X)
    then begin
      unlatch fr Latch.U;
      unpin t fr;
      Lock_manager.acquire (locks t) ~owner:txn.Txn.id (record_res t key) Lock_mode.X;
      attempt (tries + 1)
    end
    else
      match Tnode.find p ckey with
      | `Found _ -> failwith "tsb: duplicate timestamp"
      | `Not_found i ->
          if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
            promote fr;
            let lundo =
              if txn.Txn.kind = Txn.User && not (Env.config t.env).Env.page_oriented_undo
              then Some { Log_record.tree = t.root; comp = Logical.Remove { key = ckey } }
              else None
            in
            ignore
              (Txn_mgr.update ?lundo (mgr t) txn fr
                 (Page_op.Insert_slot { slot = Tnode.slot_of_entry i; cell }));
            unlatch fr Latch.X;
            unpin t fr
          end
          else begin
            unlatch fr Latch.U;
            unpin t fr;
            split_current t ~ckey ~need:(String.length cell);
            attempt (tries + 1)
          end
  in
  attempt 0;
  time

(* Combined write batch: one User transaction covers every request the
   leader drained from its slot, so one WAL flush enrollment (with
   [~commits] crediting the fan-in) makes the whole batch durable.
   Unlike blink, each key still takes its own CNS descent here — versioned
   keys are composites of (key, fresh timestamp) so two requests rarely
   share a leaf — but the shared txn collapses N commit flushes into one.
   Lock acquisition may block, which is safe because the lock manager's
   wait-for graph raises [Deadlock] instead of hanging; any batch failure
   aborts the txn and hands every request back to the direct path. *)
let apply_batch t (reqs : (string * string) array) =
  let n = Array.length reqs in
  let results = Array.make n Handback in
  let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
  (try
     let applied = ref 0 in
     Array.iteri
       (fun i (key, value) ->
         let time = write_version t txn ~key (Tnode.Value value) in
         results.(i) <- Applied time;
         incr applied)
       reqs;
     Crash_point.hit Combine.crash_point_applied;
     Txn_mgr.commit ~commits:(max 1 !applied) (mgr t) txn;
     ignore (Env.drain t.env)
   with
   | Crash_point.Crash_requested _ as e -> raise e
   | _ ->
       if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
       Array.fill results 0 n Handback);
  results

let () =
  attach_combiner_fwd :=
    fun t ->
      let c = Env.config t.env in
      if c.Env.combine then
        t.combiner <-
          Some
            (Combine.create ~slots:c.Env.combine_slots
               ~window_us:c.Env.combine_window_us
               ~apply:(fun reqs -> apply_batch t reqs)
               ())

let put_direct ?txn t ~key ~value =
  with_autocommit t txn (fun txn -> write_version t txn ~key (Tnode.Value value))

let put ?txn t ~key ~value =
  Atomic.incr t.c_puts;
  match (txn, t.combiner) with
  | None, Some combiner -> (
      match Combine.submit combiner ~hash:(Hashtbl.hash key) (key, value) with
      | Applied time -> time
      | Handback ->
          Combine.note_handback ();
          put_direct t ~key ~value)
  | _ -> put_direct ?txn t ~key ~value

let remove ?txn t key =
  with_autocommit t txn (fun txn -> write_version t txn ~key Tnode.Tombstone)

let now t = Atomic.get t.clock - 1

(* ---------- reads ---------- *)

(* Search the current node, then the history chain (newest slice first),
   for the newest version of [key] stamped <= [time]. The caller holds no
   latches on [fr] paths; history nodes are immutable so plain pins are
   safe once reached. *)
let version_in_page p ~key ~time =
  match Tnode.floor_entry p (Ordkey.composite key time) with
  | None -> None
  | Some i ->
      let ck = Tnode.entry_key p i in
      if Ordkey.belongs_to ck ~key then
        let _, payload = Tnode.entry p i in
        let _, stamp = Ordkey.decompose ck in
        Some (stamp, Tnode.version_of_payload payload)
      else None

(* Walk the history sibling chain, newest first (Figure 1: the current
   node is responsible for all previous time through its historical
   pointers). History nodes are immutable once linked, so plain pins
   suffice regardless of how the caller reached [pid] — with one
   carve-out: the GC drain ({!gc}) frees fully-expired chain tails, and
   key-split siblings share chains, so a walk may step onto a page the
   drain already freed (or the allocator re-used). Such a page fails the
   history-flag test and terminates the walk: everything past it is
   below the GC horizon, which no surviving read asks for. *)
let walk_history t ~key ~time pid =
  let rec walk pid =
    if pid = Page.nil then None
    else
      match pin t pid with
      | exception Not_found -> None
      | hfr ->
          let hp = page hfr in
          if not (is_history hp) then begin
            unpin t hfr;
            None
          end
          else begin
            let v = version_in_page hp ~key ~time in
            let next = Page.aux_ptr hp in
            unpin t hfr;
            match v with Some _ -> v | None -> walk next
          end
  in
  walk pid

let lookup_asof_latched t ~key ~time =
  let ckey = Ordkey.composite key time in
  let fr = descend t ~ckey ~target:0 ~mode:Latch.S in
  let p = page fr in
  let current = version_in_page p ~key ~time in
  let r =
    match current with
    | Some v -> Some v
    | None ->
        (* Hold the S latch across the chain walk: the GC drain takes X
           on this current node before cutting or freeing its chain, so
           the chain head stays live while we hold it. *)
        walk_history t ~key ~time (Page.aux_ptr p)
  in
  unlatch fr Latch.S;
  unpin t fr;
  r

(* Latch-free variant: the current node's version and history pointer
   are read under a validated snapshot. The chain walk re-validates the
   current node afterwards: a GC drain bumps its version word before
   cutting the chain, so a walk that raced a cut (or the re-use of freed
   chain pages) is discarded and the descent restarts. *)
let lookup_asof_olc t ~key ~time =
  let ckey = Ordkey.composite key time in
  let fr, v = olc_step t ~ckey (pin t t.root) in
  match
    (* The whole read — current-node decode AND chain walk — is guarded
       by [fr]'s version word: the GC drain bumps it before cutting or
       freeing chain pages, so [Olc.decoding] keyed to [fr] correctly
       arbitrates decode blow-ups anywhere along the walk. *)
    Olc.decoding fr v (fun () ->
        let p = page fr in
        let current = version_in_page p ~key ~time in
        let chain = Page.aux_ptr p in
        Olc.validate fr v;
        match current with
        | Some _ -> current
        | None ->
            let r = walk_history t ~key ~time chain in
            Olc.validate fr v;
            r)
  with
  | exception e ->
      unpin t fr;
      raise e
  | r ->
      unpin t fr;
      r

let lookup_asof t ~key ~time =
  if olc_enabled t then
    Olc.protect
      ~attempt:(fun () -> lookup_asof_olc t ~key ~time)
      ~fallback:(fun () -> lookup_asof_latched t ~key ~time)
      ()
  else lookup_asof_latched t ~key ~time

let get_asof t key ~time =
  match lookup_asof t ~key ~time with
  | Some (_, Tnode.Value v) -> Some v
  | Some (_, Tnode.Tombstone) | None -> None

let get t key = get_asof t key ~time:max_int

(* Version-store vtable for snapshot-isolation commits (Mvcc): the FCW
   check reads the newest stamp of a key (tombstones count — a delete is
   a conflicting write), and [apply] installs the already-validated write
   set at the transaction's single commit timestamp. *)
let () =
  register_mvcc_fwd :=
    fun t ->
      Mvcc.register_tree t.root
        {
          Mvcc.newest =
            (fun key -> Option.map fst (lookup_asof t ~key ~time:max_int));
          apply =
            (fun txn ~time ~key ~value ->
              Atomic.incr t.c_puts;
              ignore
                (write_version ~time t txn ~key
                   (match value with
                   | Some v -> Tnode.Value v
                   | None -> Tnode.Tombstone)));
        }

let history t key =
  let ckey = Ordkey.composite key max_int in
  let fr = descend t ~ckey ~target:0 ~mode:Latch.S in
  let collect p acc =
    let rec go i acc =
      if i >= Tnode.entry_count p then acc
      else
        let ck = Tnode.entry_key p i in
        if Ordkey.belongs_to ck ~key then
          let _, stamp = Ordkey.decompose ck in
          let _, payload = Tnode.entry p i in
          go (i + 1) ((stamp, Tnode.version_of_payload payload) :: acc)
        else go (i + 1) acc
    in
    match Tnode.find p (Ordkey.composite key 0) with
    | `Found i | `Not_found i -> go i acc
  in
  let p = page fr in
  let acc = collect p [] in
  let chain = Page.aux_ptr p in
  (* As in [lookup_asof_latched]: the S latch held across the walk keeps
     the GC drain off this chain; a freed shared tail ends the walk. *)
  let rec walk pid acc =
    if pid = Page.nil then acc
    else
      match pin t pid with
      | exception Not_found -> acc
      | hfr ->
          if not (is_history (page hfr)) then begin
            unpin t hfr;
            acc
          end
          else begin
            let acc = collect (page hfr) acc in
            let next = Page.aux_ptr (page hfr) in
            unpin t hfr;
            walk next acc
          end
  in
  let all = walk chain acc in
  unlatch fr Latch.S;
  unpin t fr;
  (* Alive versions are duplicated into each history slice; dedup by
     stamp. *)
  let seen = Hashtbl.create 16 in
  all
  |> List.filter (fun (stamp, _) ->
         if Hashtbl.mem seen stamp then false
         else begin
           Hashtbl.replace seen stamp ();
           true
         end)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (stamp, v) ->
         (stamp, match v with Tnode.Value s -> Some s | Tnode.Tombstone -> None))

let range_asof t ~time ?low ?high ~init ~f =
  let start = Ordkey.composite (Option.value low ~default:"") 0 in
  let beyond k = match high with None -> false | Some h -> String.compare k h >= 0 in
  let before k = match low with None -> false | Some l -> String.compare k l < 0 in
  (* Collect the distinct user keys present at the current level (every key
     ever written retains at least its newest version there), then resolve
     each as of [time]. *)
  let fr = descend t ~ckey:start ~target:0 ~mode:Latch.S in
  let rec leaves fr acc =
    let p = page fr in
    let acc =
      let a = ref acc in
      for i = 0 to Tnode.entry_count p - 1 do
        let k, _ = Ordkey.decompose (Tnode.entry_key p i) in
        if (not (before k)) && not (beyond k) then
          match !a with
          | k' :: _ when String.equal k' k -> ()
          | _ -> a := k :: !a
      done;
      !a
    in
    let sib = Page.side_ptr p in
    let fhigh = (Tnode.fence p).Bnode.high in
    unlatch fr Latch.S;
    unpin t fr;
    let continue_ =
      sib <> Page.nil
      &&
      match (fhigh, high) with
      | None, _ -> false
      | Some _, None -> true
      | Some fh, Some h ->
          let fk, _ = Ordkey.decompose fh in
          String.compare fk h < 0
    in
    if continue_ then begin
      let sfr = pin t sib in
      latch sfr Latch.S;
      leaves sfr acc
    end
    else acc
  in
  let keys = List.rev (leaves fr []) in
  List.fold_left
    (fun acc k ->
      match get_asof t k ~time with Some v -> f acc k v | None -> acc)
    init keys

(* ---------- GC: horizon, history drain, tombstone purge, merge ----------

   [set_horizon] declares that no future read will ask for a time at or
   below the horizon. [gc] then reclaims what such reads can no longer
   reach, in three steps per current leaf, each a well-formed atomic
   action (section 2.1.3 — a crash at any point leaves a searchable tree
   and recovers with no merge-specific code):

   - {b drain}: cut the longest fully-expired tail off the history chain
     and free its nodes onto the environment free list. Slices are
     contiguous and ordered newest-first, so the first node with
     [t_high <= horizon] starts an all-expired tail. Key splits share
     chains (Figure 1 copies the history pointer into the new sibling),
     so a tail may already have been freed through the other sibling: a
     non-history node terminates the walk, and the cut frees nothing at
     or past it.
   - {b purge}: once the leaf's chain is fully drained, drop version
     runs whose newest entry is a tombstone stamped at or below the
     horizon — the key then reads as absent at every surviving time,
     which is exactly what the tombstone said. (With history remaining,
     a purge would be unsafe unless the tombstone also lives in a
     history slice; we keep the conservative chain-empty rule.)
   - {b merge}: a leaf left empty with no history merges away
     blink-style — the inverse of a key split, as one atomic action: its
     containing (left) sibling under the same parent takes over its
     fence and key-sibling pointer, the parent drops its index term, and
     the page is freed.

   [gc] is a maintenance pass: it serializes against itself, and callers
   must quiesce {e writers} on this tree while it runs (the engine's CNS
   invariant promises traversals that reachable nodes are never
   consolidated; we keep that promise by consolidating only inside this
   pass). Concurrent {e readers} stay safe: latched readers hold S on
   the current node across chain walks, which the drain's X excludes,
   and optimistic readers re-validate the current node after the walk. *)

let set_horizon t time =
  (* Under snapshot isolation the horizon may not pass what a live
     snapshot can still read, nor the allocator watermark as of the last
     completed checkpoint: min(oldest live snapshot - 1, checkpoint
     floor). Requests beyond the cap are clamped, not rejected — callers
     re-request as snapshots retire and checkpoints complete. *)
  let time = if si_enabled t then min time (Snapshot.gc_cap (snap t)) else time in
  let rec bump () =
    let h = Atomic.get t.horizon in
    if time > h && not (Atomic.compare_and_set t.horizon h time) then bump ()
  in
  bump ()

let horizon t = Atomic.get t.horizon

(* Cut and free [fr]'s expired chain tail; [fr] is the X-latched current
   node, inside [txn]. Returns pages freed. *)
let drain_chain t txn fr =
  let h = Atomic.get t.horizon in
  let expired hp =
    match (Tnode.time_of hp).Tnode.t_high with
    | Some th -> th <= h
    | None -> false
  in
  (* Walk to the first expired (or already-freed) node, keeping the frame
     whose [aux_ptr] names it pinned: the current node itself, or a
     history node (latched only for the logged cut). *)
  let rec find_cut holder pid =
    if pid = Page.nil then begin
      (match holder with `Hist f -> unpin t f | `Current -> ());
      None
    end
    else
      match pin t pid with
      | exception Not_found -> Some (holder, pid, false)
      | hfr ->
          let hp = page hfr in
          if not (is_history hp) then begin
            (* Freed through a chain-sharing sibling; sever, free nothing. *)
            unpin t hfr;
            Some (holder, pid, false)
          end
          else if expired hp then begin
            unpin t hfr;
            Some (holder, pid, true)
          end
          else begin
            let next = Page.aux_ptr hp in
            (match holder with `Hist f -> unpin t f | `Current -> ());
            find_cut (`Hist hfr) next
          end
  in
  match find_cut `Current (Page.aux_ptr (page fr)) with
  | None -> 0
  | Some (holder, first, free_tail) ->
      (match holder with
      | `Current ->
          update t txn fr
            (Page_op.Set_aux_ptr { old_ptr = first; new_ptr = Page.nil })
      | `Hist hfr ->
          latch hfr Latch.X;
          update t txn hfr
            (Page_op.Set_aux_ptr { old_ptr = first; new_ptr = Page.nil });
          unlatch hfr Latch.X;
          unpin t hfr);
      Crash_point.hit "tsb.drain.cut";
      if not free_tail then 0
      else begin
        let rec free pid n =
          if pid = Page.nil then n
          else
            match pin t pid with
            | exception Not_found -> n
            | hfr ->
                latch hfr Latch.X;
                if not (is_history (page hfr)) then begin
                  unlatch hfr Latch.X;
                  unpin t hfr;
                  n
                end
                else begin
                  let next = Page.aux_ptr (page hfr) in
                  Env.dealloc_page t.env txn hfr;
                  Crash_point.hit "tsb.drain.freed";
                  unlatch hfr Latch.X;
                  unpin t hfr;
                  Atomic.incr t.c_drained;
                  free next (n + 1)
                end
        in
        free first 0
      end

(* Purge expired-tombstone runs from the X-latched current [fr]. Only
   legal once the chain is empty: with history behind the node, dropping
   the tombstone from the current level would let a read fall through to
   an older live value and resurrect the deleted key. Returns entries
   purged. *)
let purge_runs t txn fr =
  let p = page fr in
  if Page.aux_ptr p <> Page.nil then 0
  else begin
    let h = Atomic.get t.horizon in
    let n = Tnode.entry_count p in
    let doomed = Array.make (max n 1) false in
    (* Entries sort by (key, time) ascending, so each run's last entry is
       its newest version. *)
    let i = ref (n - 1) in
    while !i >= 0 do
      let k, stamp = Ordkey.decompose (Tnode.entry_key p !i) in
      let s = ref !i in
      while
        !s > 0 && String.equal (fst (Ordkey.decompose (Tnode.entry_key p (!s - 1)))) k
      do
        decr s
      done;
      (match Tnode.version_of_payload (snd (Tnode.entry p !i)) with
      | Tnode.Tombstone when stamp <= h ->
          for j = !s to !i do
            doomed.(j) <- true
          done
      | _ -> ());
      i := !s - 1
    done;
    let purged = ref 0 in
    for j = n - 1 downto 0 do
      if doomed.(j) then begin
        update t txn fr
          (Page_op.Delete_slot
             { slot = Tnode.slot_of_entry j; cell = Page.get p (Tnode.slot_of_entry j) });
        incr purged;
        Atomic.incr t.c_purged
      end
    done;
    !purged
  end

(* Merge an empty, history-less leaf into its containing (left) sibling —
   the same contained-into-containing action as the B-link engine's
   consolidation (section 3.3), re-tested from scratch inside the action
   (idempotent completion, section 5.1). [ckey] routes into the victim. *)
let merge_empty t ~ckey =
  let merged = ref 0 in
  Atomic_action.run (mgr t) (fun txn ->
      let fr = descend t ~ckey ~target:1 ~mode:Latch.U in
      let pp = page fr in
      let give_up () =
        unlatch fr Latch.U;
        unpin t fr
      in
      match Tnode.floor_entry pp ckey with
      | None -> give_up ()
      | Some 0 ->
          (* Leftmost child: its containing node lives under a different
             parent, so both section 3.3 conditions fail. *)
          give_up ()
      | Some i ->
          let _, c_pid = Tnode.index_term pp i in
          let _, ln_pid = Tnode.index_term pp (i - 1) in
          promote fr;
          let lnfr = pin t ln_pid in
          latch lnfr Latch.X;
          let cfr = pin t c_pid in
          latch cfr Latch.X;
          let release_all () =
            unlatch cfr Latch.X;
            unpin t cfr;
            unlatch lnfr Latch.X;
            unpin t lnfr;
            unlatch fr Latch.X;
            unpin t fr
          in
          let lnp = page lnfr and cp = page cfr in
          let still_linked = Page.side_ptr lnp = c_pid in
          let still_empty =
            Page.level cp = 0
            && Tnode.entry_count cp = 0
            && Page.aux_ptr cp = Page.nil
            && not (is_history cp)
          in
          if not (still_linked && still_empty) then release_all ()
          else begin
            (* LN takes over C's delegation boundary, responsibility and
               key-sibling chain; no records to move. *)
            let lnf = Tnode.fence lnp and cf = Tnode.fence cp in
            update t txn lnfr
              (Page_op.Replace_slot
                 {
                   slot = 0;
                   old_cell = Tnode.fence_cell lnf;
                   new_cell =
                     Tnode.fence_cell
                       {
                         Bnode.low = lnf.Bnode.low;
                         high = cf.Bnode.high;
                         resp_high = cf.Bnode.resp_high;
                       };
                 });
            update t txn lnfr
              (Page_op.Set_side_ptr { old_ptr = c_pid; new_ptr = Page.side_ptr cp });
            let term_cell = Page.get pp (Tnode.slot_of_entry i) in
            update t txn fr
              (Page_op.Delete_slot { slot = Tnode.slot_of_entry i; cell = term_cell });
            Crash_point.hit "tsb.merge.unlinked";
            Env.dealloc_page t.env txn cfr;
            Crash_point.hit "tsb.merge.freed";
            Atomic.incr t.c_merges;
            merged := 1;
            release_all ()
          end);
  !merged

let gc t =
  Mutex.lock t.gc_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.gc_mu) @@ fun () ->
  let freed = ref 0 in
  let empties = ref [] in
  let rec leftmost pid =
    let fr = pin t pid in
    let p = page fr in
    if Page.level p = 0 then begin
      unpin t fr;
      pid
    end
    else begin
      let _, child = Tnode.index_term p 0 in
      unpin t fr;
      leftmost child
    end
  in
  (* One atomic action per leaf: drain, then purge, then note an emptied
     leaf's low key for the merge sweep below (merging re-descends from
     the root, so a stale candidate is simply re-tested away). *)
  let rec sweep pid =
    if pid <> Page.nil then begin
      let next =
        Atomic_action.run (mgr t) (fun txn ->
            let fr = pin t pid in
            latch fr Latch.X;
            let p = page fr in
            let next = Page.side_ptr p in
            freed := !freed + drain_chain t txn fr;
            ignore (purge_runs t txn fr : int);
            if
              Tnode.entry_count p = 0
              && Page.aux_ptr p = Page.nil
              && Page.id p <> t.root
            then empties := (Tnode.fence p).Bnode.low :: !empties;
            unlatch fr Latch.X;
            unpin t fr;
            next)
      in
      sweep next
    end
  in
  sweep (leftmost t.root);
  List.iter
    (function
      | Some low -> freed := !freed + merge_empty t ~ckey:low
      | None -> ())
    (List.rev !empties);
  !freed

(* ---------- inspection ---------- *)

module WF = Wellformed.Make (Keyspace.Interval)

let read_view t pid =
  match pin t pid with
  | exception Not_found -> None
  | fr ->
      let p = page fr in
      let view =
        match Page.kind p with
        | Page.Free | Page.Meta -> None
        | Page.Data | Page.Index ->
            if is_history p then None
            else begin
              let f = Tnode.fence p in
              let responsible =
                Keyspace.Interval.make ~low:f.Bnode.low ~high:f.Bnode.resp_high
              in
              let directly = Keyspace.Interval.make ~low:f.Bnode.low ~high:f.Bnode.high in
              let sibling_terms =
                if Page.side_ptr p = Page.nil then []
                else
                  [
                    ( Keyspace.Interval.make ~low:f.Bnode.high ~high:f.Bnode.resp_high,
                      Page.side_ptr p );
                  ]
              in
              let index_terms =
                if Page.kind p <> Page.Index then []
                else
                  Tnode.(
                    let n = entry_count p in
                    let rec terms i acc =
                      if i >= n then List.rev acc
                      else
                        let sep, child = index_term p i in
                        let low = if i = 0 then f.Bnode.low else Some sep in
                        let high =
                          if i = n - 1 then f.Bnode.high
                          else Some (fst (index_term p (i + 1)))
                        in
                        terms (i + 1) ((Keyspace.Interval.make ~low ~high, child) :: acc)
                    in
                    terms 0 [])
              in
              Some
                {
                  WF.id = pid;
                  level = Page.level p;
                  responsible;
                  directly_contained = directly;
                  index_terms;
                  sibling_terms;
                }
            end
      in
      unpin t fr;
      view

(* History-chain sanity: every chain node is a history node; time slices
   are ordered oldest-outward and contiguous with the referencing node. *)
let check_chains t =
  let errors = ref [] in
  let err node message =
    errors := { Wellformed.node; condition = 2; message } :: !errors
  in
  let rec leaf_walk pid =
    if pid <> Page.nil then begin
      let fr = pin t pid in
      let p = page fr in
      if Page.level p = 0 then begin
        let rec chain pid expected_high =
          if pid <> Page.nil then begin
            match pin t pid with
            | exception Not_found -> ()
            | hfr ->
                let hp = page hfr in
                if not (is_history hp) then
                  (* End of chain, not corruption: key splits copy the
                     history pointer into both siblings, and a
                     chain-sharing sibling's drain may have freed (and
                     reused) everything from here down. Reads
                     ([walk_history]) and the gc drain ([find_cut])
                     both stop here — everything past a freed node is
                     below the horizon — so the verifier accepts the
                     dangle the same way; the next drain through the
                     holder severs it. *)
                  unpin t hfr
                else begin
                  let tc = Tnode.time_of hp in
                  (match (tc.Tnode.t_high, expected_high) with
                  | Some th, Some exp when th <> exp ->
                      err pid
                        (Printf.sprintf
                           "time slice not contiguous: t_high=%d expected %d" th exp)
                  | None, _ -> err pid "history node with open time slice"
                  | _ -> ());
                  let next = Page.aux_ptr hp in
                  let nlow = tc.Tnode.t_low in
                  unpin t hfr;
                  chain next (Some nlow)
                end
          end
        in
        let tc = Tnode.time_of p in
        chain (Page.aux_ptr p) (Some tc.Tnode.t_low)
      end;
      let next = Page.side_ptr p in
      let lvl = Page.level p in
      unpin t fr;
      if lvl = 0 then leaf_walk next
    end
  in
  (* Find the leftmost leaf. *)
  let rec leftmost pid =
    let fr = pin t pid in
    let p = page fr in
    if Page.level p = 0 then begin
      unpin t fr;
      pid
    end
    else begin
      let _, child = Tnode.index_term p 0 in
      unpin t fr;
      leftmost child
    end
  in
  leaf_walk (leftmost t.root);
  !errors

let verify t =
  let report = WF.check ~root:t.root ~read:(read_view t) in
  let chain_errors = check_chains t in
  {
    report with
    Wellformed.errors = report.Wellformed.errors @ chain_errors;
  }

let stats t =
  {
    puts = Atomic.get t.c_puts;
    time_splits = Atomic.get t.c_time_splits;
    key_splits = Atomic.get t.c_key_splits;
    root_splits = Atomic.get t.c_root_splits;
    history_nodes = Atomic.get t.c_history_nodes;
    side_traversals = Atomic.get t.c_side;
    postings_completed = Atomic.get t.c_posted;
    history_nodes_freed = Atomic.get t.c_drained;
    tombstones_purged = Atomic.get t.c_purged;
    merges = Atomic.get t.c_merges;
  }

(* Tie the posting knot. *)
let () =
  post_action := fun t ~level ~address ~key -> do_post_action t ~level ~address ~key
