(** Scheduling hooks for deterministic interleaving control.

    The cooperative simulator (lib/sim) installs a handler here; the
    synchronization primitives (latches, lock-manager waits, buffer-pool
    frame waits) and [Crash_point.hit] consult it at every would-block or
    would-matter instant.  When no handler is installed — the normal,
    multi-threaded production configuration — every entry point is a
    single [Atomic.get] and a branch, so the hooks cost nothing.

    A handler only ever fires for code running *inside* a simulated fiber
    ([fiber_id] returns [Some _]); helper threads or scheduler-context
    code (e.g. the invariant checker between steps) fall through to the
    ordinary blocking paths. *)

type kind =
  | Acquire  (** about to acquire / blocked acquiring a latch *)
  | Release  (** just released a latch *)
  | Lock     (** blocked in the lock manager *)
  | Cond     (** blocked on some other condition (pool frame, etc.) *)
  | Point    (** a [Crash_point] was hit — the instants between atomic
                 actions that the paper's argument cares about *)
  | Version  (** an optimistic reader is snapshotting or validating a
                 node's version word — the instants where a torn read
                 would slip in if the read-validate protocol were wrong *)

type handler = {
  yield : kind -> string -> unit;
      (** A scheduling point: the simulator may switch fibers here. *)
  wait : kind -> string -> (unit -> bool) -> unit;
      (** Block the calling fiber until the predicate holds.  The caller
          must NOT hold the mutex protecting the predicate's state; the
          predicate is re-evaluated by the scheduler between steps and
          once more by the caller after this returns. *)
  note_latch : int -> unit;
      (** [+1] on every latch grant, [-1] on every release; the simulator
          runs well-formedness checks only when the count is zero (the
          quiesced instants between atomic actions). *)
  fiber_id : unit -> int option;
      (** Identity of the currently running fiber, if any.  Also used to
          key per-"thread" state such as the latch-order stacks. *)
}

val install : handler -> unit
val uninstall : unit -> unit

val active : unit -> bool
(** A handler is installed AND the caller is inside a simulated fiber. *)

val fiber_id : unit -> int option
(** The running fiber's id, or [None] outside the simulator. *)

val yield : kind -> string -> unit
(** No-op unless {!active}. *)

val wait : kind -> string -> (unit -> bool) -> unit
(** Cooperative block until the predicate holds.  Must only be called
    when {!active}; raises [Invalid_argument] otherwise (a real thread
    must use its normal condvar path instead). *)

val note_latch : int -> unit
(** No-op unless {!active}. *)
