let buckets = 64

type t = {
  counts : int array;          (* counts.(i) counts samples in [2^(i-1), 2^i) *)
  mutable n : int;
  mutable sum : int;
  mutable max_v : int;
}

let create () = { counts = Array.make buckets 0; n = 0; sum = 0; max_v = 0 }

let bucket_of v = if v <= 0 then 0 else min (buckets - 1) (64 - Bits.clz v)

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n
let max_value t = t.max_v

(* Bucket 0 holds only zeros; bucket i >= 1 covers [2^(i-1), 2^i). Returning
   the exclusive upper bound 2^i overestimated every percentile by up to 2x;
   the geometric midpoint 2^(i-1/2) is the unbiased point estimate for a
   log-bucketed sample. *)
let bucket_mid i = if i = 0 then 0 else int_of_float (Float.round (2.0 ** (float_of_int i -. 0.5)))

let percentile t p =
  if t.n = 0 then 0
  else begin
    (* Nearest-rank: the smallest rank (1-based) such that at least
       ceil(p/100 * n) samples are at or below it. Truncating instead of
       taking the ceiling shifted the rank up by one whenever p*n/100 was
       integral (and float noise could shift it either way). *)
    let rank =
      max 1 (int_of_float (Float.ceil (Float.of_int t.n *. p /. 100.0)))
    in
    let rank = min rank t.n in
    let rec go i seen =
      if i >= buckets then t.max_v
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then bucket_mid i else go (i + 1) seen
    in
    go 0 0
  end

let p999 t = percentile t 99.9

let merge a b =
  let r = create () in
  Array.blit a.counts 0 r.counts 0 buckets;
  Array.iteri (fun i c -> r.counts.(i) <- r.counts.(i) + c) b.counts;
  r.n <- a.n + b.n;
  r.sum <- a.sum + b.sum;
  r.max_v <- max a.max_v b.max_v;
  r

let reset t =
  Array.fill t.counts 0 buckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.max_v <- 0
