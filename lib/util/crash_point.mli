(** Named crash-injection points.

    Engines call {!hit} at interesting instants of a structure change (e.g.
    between the split action and the posting action). Tests and the E5
    benchmark {!arm} a point; when its countdown expires, {!hit} raises
    {!Crash_requested}, which the database layer converts into a simulated
    power failure (buffer pool, lock tables and live transactions all
    discarded; only flushed pages and the durable log prefix survive).

    Points are global and thread-safe; unknown points are always silent.

    {2 The registry}

    This module is the single registry — there is no per-layer alias.
    Points are namespaced [<family>.<site>]; the chaos sweep harness maps
    the family prefix to a workload that can drive the point. Families
    registered at module-initialization time across the tree:

    - [blink.*] — B-link structure changes (between the split atomic
      action and the index-term posting, around consolidation, ...)
    - [tsb.*] — TSB-tree time/key splits
    - [hb.*] — hB-tree splits and path postings
    - [wal.group.synced] — the group-commit lost-acknowledgment window,
      between a batch reaching disk and its waiters being woken
    - [ckpt.begin.logged], [ckpt.end.logged], [ckpt.truncated] — the
      fuzzy-checkpoint protocol: after the Begin_checkpoint fence is
      logged, after the End_checkpoint record is forced, and after the
      log prefix below the redo point has been reclaimed

    Use {!all_names} to enumerate whatever the linked-in modules have
    registered. *)

exception Crash_requested of string

val register : string -> unit
(** Add [name] to the global registry without hitting it. Engines register
    their points at module-initialization time so sweep harnesses can
    enumerate every site ({!all_names}) before any has fired; {!hit} also
    registers implicitly. Idempotent. *)

val all_names : unit -> string list
(** Every registered point, sorted. *)

val arm : string -> after:int -> unit
(** [arm name ~after:n]: the [n+1]-th subsequent {!hit} of [name] raises. *)

val disarm : string -> unit
val disarm_all : unit -> unit

val hit : string -> unit
(** Record a hit; raise {!Crash_requested} if armed and due. *)

val hit_count : string -> int
(** Total hits of this point since the last {!reset_counts} (armed or not). *)

val reset_counts : unit -> unit
