type kind = Acquire | Release | Lock | Cond | Point | Version

type handler = {
  yield : kind -> string -> unit;
  wait : kind -> string -> (unit -> bool) -> unit;
  note_latch : int -> unit;
  fiber_id : unit -> int option;
}

let current : handler option Atomic.t = Atomic.make None
let install h = Atomic.set current (Some h)
let uninstall () = Atomic.set current None

let active () =
  match Atomic.get current with
  | None -> false
  | Some h -> h.fiber_id () <> None

let fiber_id () =
  match Atomic.get current with None -> None | Some h -> h.fiber_id ()

let yield kind label =
  match Atomic.get current with
  | None -> ()
  | Some h -> if h.fiber_id () <> None then h.yield kind label

let wait kind label pred =
  match Atomic.get current with
  | Some h when h.fiber_id () <> None -> h.wait kind label pred
  | _ -> invalid_arg "Sched_hook.wait: no simulated fiber is running"

let note_latch delta =
  match Atomic.get current with
  | None -> ()
  | Some h -> if h.fiber_id () <> None then h.note_latch delta
