(** Latency/size histogram with power-of-two buckets.

    Cheap enough to record per-operation latencies on the hot path of the
    benchmark driver; mergeable across worker domains. *)

type t

val create : unit -> t
val record : t -> int -> unit
(** [record t v] counts the non-negative sample [v] (negative samples are
    clamped to 0). *)

val count : t -> int
val total : t -> int
val mean : t -> float
val max_value : t -> int
val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,100]; nearest-rank over the power-of-two
    buckets, reported as the chosen bucket's geometric midpoint
    [2^(i-1/2)] (0 for the zero bucket). *)

val p999 : t -> int
(** [percentile t 99.9] — the endurance-rig tail percentile, named so the
    convention (nearest-rank over geometric bucket midpoints) is fixed in
    one place. *)

val merge : t -> t -> t
(** Pure merge of two histograms (inputs unchanged). *)

val reset : t -> unit
