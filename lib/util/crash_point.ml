exception Crash_requested of string

let mu = Mutex.create ()
let armed : (string, int ref) Hashtbl.t = Hashtbl.create 8
let counts : (string, int ref) Hashtbl.t = Hashtbl.create 32
let registry : (string, unit) Hashtbl.t = Hashtbl.create 32

let register name =
  Mutex.lock mu;
  Hashtbl.replace registry name ();
  Mutex.unlock mu

let all_names () =
  Mutex.lock mu;
  let names = Hashtbl.fold (fun name () acc -> name :: acc) registry [] in
  Mutex.unlock mu;
  List.sort String.compare names

let arm name ~after =
  Mutex.lock mu;
  Hashtbl.replace armed name (ref after);
  Mutex.unlock mu

let disarm name =
  Mutex.lock mu;
  Hashtbl.remove armed name;
  Mutex.unlock mu

let disarm_all () =
  Mutex.lock mu;
  Hashtbl.reset armed;
  Mutex.unlock mu

let hit name =
  Mutex.lock mu;
  Hashtbl.replace registry name ();
  (match Hashtbl.find_opt counts name with
  | Some c -> incr c
  | None -> Hashtbl.replace counts name (ref 1));
  let fire =
    match Hashtbl.find_opt armed name with
    | Some remaining ->
        if !remaining <= 0 then begin
          Hashtbl.remove armed name;
          true
        end
        else begin
          decr remaining;
          false
        end
    | None -> false
  in
  Mutex.unlock mu;
  if fire then raise (Crash_requested name);
  (* Crash points mark the instants between (and inside) atomic actions —
     exactly where the simulator wants a chance to switch fibers. *)
  Sched_hook.yield Point name

let hit_count name =
  Mutex.lock mu;
  let n = match Hashtbl.find_opt counts name with Some c -> !c | None -> 0 in
  Mutex.unlock mu;
  n

let reset_counts () =
  Mutex.lock mu;
  Hashtbl.reset counts;
  Mutex.unlock mu
