(* clock_gettime(CLOCK_MONOTONIC) via bechamel's no-alloc stub; the int64
   nanosecond counter fits an OCaml int for ~292 years of uptime. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
