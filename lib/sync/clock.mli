(** Monotonic nanosecond clock for latency accounting.

    [Unix.gettimeofday] is a wall clock: it is subject to NTP slews and
    leap-second steps, returns a float (so differencing two readings costs
    precision exactly where it matters, in the nanoseconds), and boxes.
    Every hot-path timing site in the library — latch wait/hold intervals,
    buffer-pool miss I/O, per-operation workload latency — goes through
    this module instead: a monotonic [CLOCK_MONOTONIC] source read by a
    no-allocation C stub, returned as integer nanoseconds. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary (boot-time) origin; strictly usable only
    for differences. Monotonic: never steps backwards. *)
