module Sched_hook = Pitree_util.Sched_hook

type t = { name : string; word : int Atomic.t }

let make ?(name = "version") state = { name; word = Atomic.make (2 * state) }
let seed t state = Atomic.set t.word (2 * state)
let peek t = Atomic.get t.word
let is_locked v = v land 1 = 1

(* The sim yield BEFORE the atomic read: the scheduler can run a writer to
   completion (or mid-mutation) right where a real machine could, so
   Sim.explore enumerates exactly the interleavings the protocol must
   tolerate. Outside the simulator this is one Atomic.get — seqcst in
   Multicore OCaml, so observing a publish also acquires every plain write
   the publisher made before it. *)
let snapshot t =
  Sched_hook.yield Sched_hook.Version t.name;
  Atomic.get t.word

let validate t v =
  Sched_hook.yield Sched_hook.Version t.name;
  (not (is_locked v)) && Atomic.get t.word = v

(* Writer side: called with the node's X latch held (and, for [lock] /
   [publish], the latch's internal mutex) — so these must never yield to
   the cooperative scheduler, which would deadlock a fiber spinning on the
   same mutex. The X holder is unique, so get-then-set is race-free. *)
let lock t =
  let v = Atomic.get t.word in
  if not (is_locked v) then Atomic.set t.word (v + 1)

let publish t state = Atomic.set t.word (2 * state)

let publish_bump t =
  let v = Atomic.get t.word in
  Atomic.set t.word ((v lor 1) + 1)
