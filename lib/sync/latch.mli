(** S/U/X latches (paper section 4.1).

    Latches are short-term semaphores used for physical consistency of index
    nodes. They never interact with the database lock manager. Deadlock is
    avoided by the holder's acquisition ORDER, not by detection: parents are
    latched before children, containing nodes before contained nodes, space
    management information last (section 4.1.1). [Latch_order] provides a
    debug checker for this discipline.

    Modes:
    - [S]hare: concurrent with other S and with one U holder.
    - [U]pdate: concurrent with S; conflicts with U and X. The only mode
      from which promotion to X is permitted ("whenever a node might be
      written, a U latch is used").
    - [X] (exclusive): conflicts with everything.

    The same agent must not re-acquire a latch it already holds (latches are
    not re-entrant); promotion is the one sanctioned exception. *)

type mode = S | U | X

val pp_mode : Format.formatter -> mode -> unit

type t

val create : ?name:string -> unit -> t
val name : t -> string

val acquire : t -> mode -> unit
(** Blocks until the latch is granted in [mode]. *)

val try_acquire : t -> mode -> bool
(** Non-blocking variant; [true] on success. *)

val promote : t -> unit
(** Promote the caller's U latch to X; blocks until concurrent readers
    drain. Per section 4.1.1 the caller must not hold latches on
    higher-ordered resources when promoting. Raises [Invalid_argument] if
    the caller did not announce a U hold. *)

val demote : t -> unit
(** Demote the caller's X latch to U (lets readers in while retaining the
    right to write again). *)

val release : t -> mode -> unit
(** Release one hold in [mode]. Releasing a mode that is not held raises
    [Invalid_argument]. *)

(** {2 Optimistic-read support}

    Every latch carries a {!Version} word for latch-free readers: it goes
    odd when an X latch is granted (or a U latch promoted) and is
    republished even — as twice the {!set_state_source} state identifier —
    when the X hold ends (release or demote). Readers snapshot it, read
    the protected node without latching, and validate; see
    {!Version} and DESIGN.md section 14. *)

val version : t -> Version.t

val set_state_source : t -> (unit -> int) -> unit
(** Install the state identifier published on X exit. Frame latches wire
    this to the page's LSN, making the word comparable across evictions
    and equal to [2 * Saved_path.entry.state_id] exactly when the node is
    unchanged since the path entry was saved. *)

(** Test-only: globally suppress version bumping/publishing to model a
    writer that "forgets" the protocol (driven by
    [Blink.Testing.No_version_bump]; the lib/sim linearizability oracle
    must catch the resulting stale optimistic reads). *)
module Testing : sig
  val set_version_bumps : bool -> unit
  val version_bumps : unit -> bool
end

(** {2 Statistics} — feed experiment E4 (latch hold/wait times). *)

type stats = {
  acquisitions : int;
  contended : int;       (** acquisitions that had to wait *)
  wait_ns : int;         (** total nanoseconds spent waiting *)
  hold_ns : int;
      (** total nanoseconds {e contended} X or U latches were held. Hold
          timestamps are sampled (from the monotonic [Clock]) only when the
          acquisition had to wait — uncontended grant/release pairs never
          touch the clock, keeping the fast path free of syscalls. *)
}

val stats : t -> stats
val reset_stats : t -> unit

val global_stats : unit -> stats
(** Aggregate over all latches created since [reset_global_stats]. *)

val reset_global_stats : unit -> unit
