(** Per-node version words for optimistic (latch-free) reads.

    The word encodes the node's state identifier (section 5.2: the page
    LSN) shifted left one bit: [2 * lsn] while the node is quiescent, odd
    while a writer holds the X latch and may be mid-mutation. A reader
    {!snapshot}s the word, reads the node without latching, then
    {!validate}s: an unchanged even word proves the node was not mutated
    in between — every mutation advances the page LSN, so the published
    value is strictly monotone and immune to ABA, and it is comparable
    across frame evictions and re-reads because it is derived from the
    durable state identifier rather than a per-frame counter.

    Memory ordering: OCaml [Atomic] operations are seqcst with full
    fences. The writer bumps to odd {e before} its first plain write and
    publishes the new even value {e after} its last one (both while
    holding the X latch), so a validate that returns [true] orders the
    reader's plain reads entirely outside any writer's plain-write window.
    See DESIGN.md section 14 for the full argument.

    Under the simulator, {!snapshot} and {!validate} are scheduling
    points ([Sched_hook.Version]) so [Sim.explore] can interleave writers
    into the read-validate window; {!lock}/{!publish} are driven from
    inside the latch implementation and never yield. *)

type t

val make : ?name:string -> int -> t
(** [make state] starts quiescent at [2 * state]. *)

val seed : t -> int -> unit
(** Reset to [2 * state] — used when a buffer frame is (re)loaded with a
    page image, keying the word to that page's LSN. *)

val peek : t -> int
(** Raw read, no scheduling point (stats / assertions). *)

val is_locked : int -> bool
(** A snapshotted value is odd: a writer holds the X latch. *)

val snapshot : t -> int
(** Read the word (sim scheduling point). The caller must check
    {!is_locked} — reading a node under an odd snapshot can only yield a
    torn value. *)

val validate : t -> int -> bool
(** [validate t v] re-reads (sim scheduling point) and returns whether
    the word is still exactly the even value [v]. *)

val lock : t -> unit
(** Writer entry: bump to odd. Caller holds the node's X latch. *)

val publish : t -> int -> unit
(** Writer exit: set to [2 * state] for the node's current state
    identifier. Caller still holds the X latch. *)

val publish_bump : t -> unit
(** Writer exit without a state source: advance to the next even value
    (strictly greater than any value seen during the hold). *)
