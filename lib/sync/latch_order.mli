(** Debug checker for the latch-ordering discipline of section 4.1.1.

    Deadlock among latches is avoided by keeping the "potential delay" graph
    acyclic: resources are ranked and latched in non-decreasing rank. In a
    Pi-tree the rank of a node is its depth (parents before children); nodes
    reached by side pointers share their container's rank (containing before
    contained is enforced by traversal direction, which the checker cannot
    see, so equal ranks are admitted); space-management information ranks
    last.

    The checker keeps a per-domain stack of held ranks. It never blocks or
    fails the caller: violations are counted (and logged at debug level) so
    tests can assert a zero count after exercising the protocol. Disabled
    checkers cost one atomic load per call. *)

val enable : bool -> unit
val enabled : unit -> bool

val rank_of_level : root_level:int -> int -> int
(** [rank_of_level ~root_level level] ranks tree levels so that higher tree
    levels (nearer the root) get smaller ranks. *)

val space_map_rank : int
(** Strictly greater than any tree rank. *)

val acquired : int -> unit
(** Record that the current domain acquired a latch of the given rank,
    checking it against the deepest rank held. *)

val released : int -> unit
(** Record a release (removes one occurrence of the rank). *)

val promoting : int -> unit
(** Record a U->X promotion at the given rank; per section 4.1.1 this is a
    violation if the domain holds any latch of strictly greater rank. *)

val violations : unit -> int
val reset : unit -> unit

val reset_fibers : unit -> unit
(** Drop the per-fiber held-rank stacks. The simulator calls this at the
    start of each run so aborted fibers from a previous run cannot leak
    stale ranks into the next one. *)
