type mode = S | U | X

let pp_mode ppf m =
  Format.pp_print_string ppf (match m with S -> "S" | U -> "U" | X -> "X")

type stats = {
  acquisitions : int;
  contended : int;
  wait_ns : int;
  hold_ns : int;
}

(* Global aggregates, updated lock-free so that per-frame latches need no
   registry. *)
let g_acquisitions = Atomic.make 0
let g_contended = Atomic.make 0
let g_wait_ns = Atomic.make 0
let g_hold_ns = Atomic.make 0

(* Monotonic int-ns. The wall clock ([Unix.gettimeofday]) used here
   previously cost two float syscalls per U/X acquisition on the
   uncontended fast path and could run backwards under NTP slew. *)
let now_ns = Clock.now_ns

type t = {
  name : string;
  mu : Mutex.t;
  cond : Condition.t;
  mutable readers : int;
  mutable u_held : bool;
  mutable x_held : bool;
  mutable u_wants_x : bool;     (* promotion pending: blocks new S grants *)
  mutable acquired_at : int;    (* ns timestamp of current U/X grant *)
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_ns : int;
  mutable hold_ns : int;
  version : Version.t;          (* optimistic readers' word: odd while X-held *)
  mutable state_src : (unit -> int) option;
      (* state identifier published on X exit (the page LSN for frame
         latches); [None] falls back to a monotone bump *)
}

let create ?(name = "latch") () =
  {
    name;
    mu = Mutex.create ();
    cond = Condition.create ();
    readers = 0;
    u_held = false;
    x_held = false;
    u_wants_x = false;
    acquired_at = 0;
    acquisitions = 0;
    contended = 0;
    wait_ns = 0;
    hold_ns = 0;
    version = Version.make ~name 0;
    state_src = None;
  }

let name t = t.name
let version t = t.version
let set_state_source t f = t.state_src <- Some f

(* Test-only: an injected "writer forgets to bump the version" protocol
   bug (see Blink.Testing.No_version_bump). When disabled, X holds leave
   the version word untouched, so an optimistic reader cannot tell that
   the node changed under it — the lib/sim linearizability oracle must
   catch the resulting stale reads. *)
let version_bumps = ref true

(* X entry: flip the word odd BEFORE any plain write the holder will make.
   Called with [t.mu] held; never yields. *)
let version_lock t = if !version_bumps then Version.lock t.version

(* X exit: publish the node's (possibly advanced) state identifier.
   Called with [t.mu] held, after the holder's last plain write and before
   the next writer can be granted. *)
let version_publish t =
  if !version_bumps then
    match t.state_src with
    | Some f -> Version.publish t.version (f ())
    | None -> Version.publish_bump t.version

let grantable t = function
  | S -> (not t.x_held) && not t.u_wants_x
  | U -> (not t.u_held) && not t.x_held
  | X -> t.readers = 0 && (not t.u_held) && not t.x_held

(* Hold timestamps are sampled only when the acquisition contended
   ([acquired_at = 0] means "untimed"): an uncontended acquire/release pair
   — the overwhelmingly common case under the paper's short-latch
   discipline — never reads the clock at all. *)
let grant ?(contended = false) t mode =
  (match mode with
  | S -> t.readers <- t.readers + 1
  | U ->
      t.u_held <- true;
      t.acquired_at <- (if contended then now_ns () else 0)
  | X ->
      t.x_held <- true;
      version_lock t;
      t.acquired_at <- (if contended then now_ns () else 0));
  t.acquisitions <- t.acquisitions + 1;
  Atomic.incr g_acquisitions

module Sched_hook = Pitree_util.Sched_hook

(* Under the deterministic simulator every acquisition is a scheduling
   point and every would-block wait is a cooperative [Sched_hook.wait]
   instead of a condvar sleep (the scheduler runs all fibers on one
   thread, so a real [Condition.wait] would deadlock it).  Clock reads
   are skipped entirely so schedules stay bit-for-bit replayable. *)
let sim_acquire t mode =
  Sched_hook.yield Acquire t.name;
  let rec loop first =
    Mutex.lock t.mu;
    if grantable t mode then begin
      grant t mode;
      Mutex.unlock t.mu
    end
    else begin
      if first then begin
        t.contended <- t.contended + 1;
        Atomic.incr g_contended
      end;
      Mutex.unlock t.mu;
      Sched_hook.wait Acquire t.name (fun () -> grantable t mode);
      loop false
    end
  in
  loop true;
  Sched_hook.note_latch 1

let sim_promote t =
  Mutex.lock t.mu;
  if not t.u_held then begin
    Mutex.unlock t.mu;
    invalid_arg "Latch.promote: caller does not hold a U latch"
  end;
  t.u_wants_x <- true;
  Mutex.unlock t.mu;
  Sched_hook.wait Acquire t.name (fun () -> t.readers = 0);
  Mutex.lock t.mu;
  t.u_held <- false;
  t.x_held <- true;
  version_lock t;
  t.u_wants_x <- false;
  Mutex.unlock t.mu

let acquire t mode =
  if Sched_hook.active () then sim_acquire t mode
  else begin
  Mutex.lock t.mu;
  if grantable t mode then grant t mode
  else begin
    let t0 = now_ns () in
    t.contended <- t.contended + 1;
    Atomic.incr g_contended;
    while not (grantable t mode) do
      Condition.wait t.cond t.mu
    done;
    let dt = now_ns () - t0 in
    t.wait_ns <- t.wait_ns + dt;
    ignore (Atomic.fetch_and_add g_wait_ns dt);
    grant ~contended:true t mode
  end;
  Mutex.unlock t.mu
  end

let try_acquire t mode =
  Mutex.lock t.mu;
  let ok = grantable t mode in
  if ok then grant t mode;
  Mutex.unlock t.mu;
  if ok then Sched_hook.note_latch 1;
  ok

let promote t =
  if Sched_hook.active () then sim_promote t
  else begin
  Mutex.lock t.mu;
  if not t.u_held then begin
    Mutex.unlock t.mu;
    invalid_arg "Latch.promote: caller does not hold a U latch"
  end;
  t.u_wants_x <- true;
  if t.readers > 0 then begin
    let t0 = now_ns () in
    t.contended <- t.contended + 1;
    Atomic.incr g_contended;
    while t.readers > 0 do
      Condition.wait t.cond t.mu
    done;
    let dt = now_ns () - t0 in
    t.wait_ns <- t.wait_ns + dt;
    ignore (Atomic.fetch_and_add g_wait_ns dt);
    (* Promotion contended: the hold is now interesting even if the original
       U grant was uncontended (untimed). Start the clock here in that case;
       otherwise keep [acquired_at] from the U grant so hold time covers
       U-then-X as one critical section. *)
    if t.acquired_at = 0 then t.acquired_at <- t0 + dt
  end;
  t.u_held <- false;
  t.x_held <- true;
  version_lock t;
  t.u_wants_x <- false;
  Mutex.unlock t.mu
  end

let demote t =
  Mutex.lock t.mu;
  if not t.x_held then begin
    Mutex.unlock t.mu;
    invalid_arg "Latch.demote: caller does not hold an X latch"
  end;
  version_publish t;
  t.x_held <- false;
  t.u_held <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let finish_hold t =
  if t.acquired_at <> 0 then begin
    let dt = now_ns () - t.acquired_at in
    t.acquired_at <- 0;
    t.hold_ns <- t.hold_ns + dt;
    ignore (Atomic.fetch_and_add g_hold_ns dt)
  end

let release t mode =
  Mutex.lock t.mu;
  (match mode with
  | S ->
      if t.readers <= 0 then begin
        Mutex.unlock t.mu;
        invalid_arg "Latch.release: no S hold"
      end;
      t.readers <- t.readers - 1
  | U ->
      if not t.u_held then begin
        Mutex.unlock t.mu;
        invalid_arg "Latch.release: no U hold"
      end;
      t.u_held <- false;
      finish_hold t
  | X ->
      if not t.x_held then begin
        Mutex.unlock t.mu;
        invalid_arg "Latch.release: no X hold"
      end;
      version_publish t;
      t.x_held <- false;
      finish_hold t);
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  if Sched_hook.active () then begin
    Sched_hook.note_latch (-1);
    Sched_hook.yield Release t.name
  end

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      acquisitions = t.acquisitions;
      contended = t.contended;
      wait_ns = t.wait_ns;
      hold_ns = t.hold_ns;
    }
  in
  Mutex.unlock t.mu;
  s

let reset_stats t =
  Mutex.lock t.mu;
  t.acquisitions <- 0;
  t.contended <- 0;
  t.wait_ns <- 0;
  t.hold_ns <- 0;
  Mutex.unlock t.mu

let global_stats () =
  {
    acquisitions = Atomic.get g_acquisitions;
    contended = Atomic.get g_contended;
    wait_ns = Atomic.get g_wait_ns;
    hold_ns = Atomic.get g_hold_ns;
  }

let reset_global_stats () =
  Atomic.set g_acquisitions 0;
  Atomic.set g_contended 0;
  Atomic.set g_wait_ns 0;
  Atomic.set g_hold_ns 0

module Testing = struct
  let set_version_bumps b = version_bumps := b
  let version_bumps () = !version_bumps
end
