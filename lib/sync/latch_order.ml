let enabled_flag = Atomic.make false
let violation_count = Atomic.make 0

let enable b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let space_map_rank = max_int

let rank_of_level ~root_level level = root_level - level

(* Per-domain stack of held ranks. A plain list is fine: traversals hold at
   most a handful of latches. *)
let held : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Under the simulator many logical threads share one domain, so the
   per-domain stack would cross-pollute; key by fiber instead.  The
   table is only touched from the (single-threaded) simulator. *)
let fiber_held : (int, int list ref) Hashtbl.t = Hashtbl.create 16

let reset_fibers () = Hashtbl.reset fiber_held

let stack_for () =
  match Pitree_util.Sched_hook.fiber_id () with
  | None -> Domain.DLS.get held
  | Some f -> (
      match Hashtbl.find_opt fiber_held f with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.replace fiber_held f s;
          s)

let violate () = Atomic.incr violation_count

let acquired rank =
  if Atomic.get enabled_flag then begin
    let stack = stack_for () in
    (* Non-decreasing rank required: acquiring a rank smaller than one
       already held means "child before parent" somewhere. *)
    if List.exists (fun r -> r > rank) !stack then violate ();
    stack := rank :: !stack
  end

let released rank =
  if Atomic.get enabled_flag then begin
    let stack = stack_for () in
    let rec remove = function
      | [] -> []
      | r :: rest -> if r = rank then rest else r :: remove rest
    in
    stack := remove !stack
  end

let promoting rank =
  if Atomic.get enabled_flag then begin
    let stack = stack_for () in
    if List.exists (fun r -> r > rank) !stack then violate ()
  end

let violations () = Atomic.get violation_count
let reset () = Atomic.set violation_count 0
