(** [Pitree_core.Engine.S] over the hB-tree: string keys are embedded as
    deterministic points (coordinate [i] = hash of [(i, key)], uniform in
    [0, 1)). Point operations pass through; ordered [scan] cannot be
    served over hashed coordinates and reports 0. *)

include Pitree_core.Engine.S with type t = Hb.t

val inst : Hb.t -> Pitree_core.Engine.instance

val point_of_key : dims:int -> string -> float array
(** The embedding, exposed so tests can address the same records through
    both the engine interface and the native point API. *)
