module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Olc = Pitree_storage.Olc
module Latch = Pitree_sync.Latch
module Page_op = Pitree_wal.Page_op
module Lsn = Pitree_wal.Lsn
module Log_record = Pitree_wal.Log_record
module Log_manager = Pitree_wal.Log_manager
module Logical = Pitree_wal.Logical
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Crash_point = Pitree_util.Crash_point
module Env = Pitree_env.Env
module Wellformed = Pitree_core.Wellformed

(* Every Crash_point.hit site in this engine, pre-registered so sweep
   harnesses can enumerate them before any fires. *)
let () =
  List.iter Crash_point.register
    [
      "hb.split.linked";
      "hb.root.grown";
      "hb.post.updated";
      "hb.consolidate.linked";
      "hb.merge.freed";
    ]
module Codec = Pitree_util.Codec
module Combine = Pitree_combine.Combine
open Hb_space

type stats = {
  inserts : int;
  searches : int;
  data_splits : int;
  index_splits : int;
  root_splits : int;
  side_traversals : int;
  postings_completed : int;
  clipped_postings : int;
  multi_parent_marks : int;
  consolidations : int;
  consolidations_skipped : int;
}

(* Outcome of a combined insert: applied inside the leader's batch
   transaction, or handed back for the caller to retry on the ordinary
   one-insert-one-txn path. *)
type comb_res = Applied | Handback

type t = {
  env : Env.t;
  name : string;
  root : int;
  k : int;
  mutable combiner : (float array * string, comb_res) Combine.t option;
  c_inserts : int Atomic.t;
  c_searches : int Atomic.t;
  c_data_splits : int Atomic.t;
  c_index_splits : int Atomic.t;
  c_root_splits : int Atomic.t;
  c_side : int Atomic.t;
  c_posted : int Atomic.t;
  c_clipped : int Atomic.t;
  c_multi : int Atomic.t;
  c_consol : int Atomic.t;
  c_consol_skip : int Atomic.t;
  pending : (int, unit) Hashtbl.t;
  pending_mu : Mutex.t;
}

let env t = t.env
let dims t = t.k

let pool t = Env.pool t.env
let mgr t = Env.txns t.env
let pin t pid = Buffer_pool.pin (pool t) pid
let unpin t fr = Buffer_pool.unpin (pool t) fr
let page fr = fr.Buffer_pool.page
let latch fr m = Latch.acquire fr.Buffer_pool.latch m
let unlatch fr m = Latch.release fr.Buffer_pool.latch m
let promote fr = Latch.promote fr.Buffer_pool.latch
let update t txn fr op = ignore (Txn_mgr.update (mgr t) txn fr op)

let multi_parent_flag = 1

(* ---------- cell codecs ---------- *)

(* slot 0: the node's brick (its responsible space). *)
let brick_cell (b : brick) =
  let buf = Buffer.create 32 in
  Codec.put_u8 buf (Array.length b.low);
  Array.iter (Codec.put_float buf) b.low;
  Array.iter (Codec.put_float buf) b.high;
  Buffer.contents buf

let brick_of_cell s =
  let r = Codec.reader s in
  let k = Codec.get_u8 r in
  let low = Array.init k (fun _ -> Codec.get_float r) in
  let high = Array.init k (fun _ -> Codec.get_float r) in
  { low; high }

let node_brick p = brick_of_cell (Page.get p 0)

(* slot 1: the kd-tree. *)
let node_kd p = Hkd.decode (Page.get p 1)

let set_kd t txn fr kd =
  update t txn fr
    (Page_op.Replace_slot
       { slot = 1; old_cell = Page.get (page fr) 1; new_cell = Hkd.encode kd })

(* slots 2..: point records. *)
let record_cell ~point ~value =
  let b = Buffer.create 32 in
  Codec.put_u8 b (Array.length point);
  Array.iter (Codec.put_float b) point;
  Codec.put_bytes b value;
  Buffer.contents b

let record_of_cell s =
  let r = Codec.reader s in
  let k = Codec.get_u8 r in
  let point = Array.init k (fun _ -> Codec.get_float r) in
  let value = Codec.get_bytes r in
  (point, value)

let base = 2
let record_count p = Page.slot_count p - base

let find_record p point =
  let n = record_count p in
  let rec go i =
    if i >= n then None
    else
      let pt, v = record_of_cell (Page.get p (base + i)) in
      if pt = point then Some (base + i, v) else go (i + 1)
  in
  go 0

(* ---------- traversal ---------- *)

let post_action : (t -> level:int -> address:int -> anchor:float array -> unit) ref =
  ref (fun _ ~level:_ ~address:_ ~anchor:_ -> assert false)

let maybe_schedule_posting t ~level ~sibling ~anchor =
  Mutex.lock t.pending_mu;
  let fresh = not (Hashtbl.mem t.pending sibling) in
  if fresh then Hashtbl.replace t.pending sibling ();
  Mutex.unlock t.pending_mu;
  if fresh then
    Env.schedule t.env (fun () ->
        Mutex.lock t.pending_mu;
        Hashtbl.remove t.pending sibling;
        Mutex.unlock t.pending_mu;
        !post_action t ~level:(level + 1) ~address:sibling ~anchor)

(* Route within the node for [point]: side-step over sibling markers until
   the node holds the point Here (leaf) or names a child (index). CNS:
   one latch at a time. *)
let rec settle t ~point ~m fr =
  let p = page fr in
  match Hkd.walk (node_kd p) point with
  | Hkd.Sibling s ->
      Atomic.incr t.c_side;
      maybe_schedule_posting t ~level:(Page.level p) ~sibling:s ~anchor:point;
      let sfr = pin t s in
      if (Env.config t.env).Env.consolidation then begin
        (* CP invariant: couple so the target cannot be de-allocated while
           the pointer is de-referenced (section 5.2.2). *)
        latch sfr m;
        unlatch fr m;
        unpin t fr
      end
      else begin
        unlatch fr m;
        unpin t fr;
        latch sfr m
      end;
      settle t ~point ~m sfr
  | Hkd.Here | Hkd.Child _ -> fr

let rec descend_from t ~point ~target ~mode fr =
  let p = page fr in
  let level = Page.level p in
  let m = if level > target then Latch.S else mode in
  let fr = settle t ~point ~m fr in
  if level = target then fr
  else begin
    let child =
      match Hkd.walk (node_kd (page fr)) point with
      | Hkd.Child c -> c
      | Hkd.Here | Hkd.Sibling _ -> assert false
    in
    let cfr = pin t child in
    let cm = if level - 1 > target then Latch.S else mode in
    if (Env.config t.env).Env.consolidation then begin
      latch cfr cm;
      unlatch fr m;
      unpin t fr
    end
    else begin
      unlatch fr m;
      unpin t fr;
      latch cfr cm
    end;
    descend_from t ~point ~target ~mode cfr
  end

let rec descend t ~point ~target ~mode =
  let fr = pin t t.root in
  let above = Page.level (page fr) > target in
  let m = if above then Latch.S else mode in
  latch fr m;
  if Page.level (page fr) > target <> above then begin
    unlatch fr m;
    unpin t fr;
    descend t ~point ~target ~mode
  end
  else descend_from t ~point ~target ~mode fr

(* ---------- optimistic (latch-free) descent ----------

   Same read-validate-retry protocol as Pitree_blink (see the section
   comment there and Pitree_storage.Olc). The hB-tree runs under either
   invariant, so like the latched descent it must defend against CP
   de-allocation: after pinning a node reached through a validated
   pointer, re-validate the node the pointer was read from — unchanged
   means the pointer still stood once the pin made the target
   un-recyclable. *)

let olc_enabled t = (Env.config t.env).Env.olc_reads

(* Descend pinned-only to the leaf holding [point]'s region; returns it
   pinned with a validated version-word snapshot. Owns [fr]'s pin: every
   exit, including every raise, drops every pin held. *)
let rec olc_step t ~point fr =
  match
    let v = Olc.snapshot fr in
    let p = page fr in
    (* Routing reads (level, kd-tree walk) parse unvalidated bytes;
       [Olc.decoding] restarts a decode blow-up only when the version
       word proves them torn. *)
    Olc.decoding fr v @@ fun () ->
    let level = Page.level p in
    match Hkd.walk (node_kd p) point with
    | Hkd.Sibling s ->
        Olc.validate fr v;
        `Next (v, s, `Side level)
    | Hkd.Child c when level > 0 ->
        Olc.validate fr v;
        `Next (v, c, `Child)
    | Hkd.Here | Hkd.Child _ ->
        (* [Here] (or a level-0 kd-tree child marker) means this node:
           the leaf, if the level read was not torn. *)
        if level = 0 then begin
          Olc.validate fr v;
          `Leaf v
        end
        else raise Olc.Restart
  with
  | exception e ->
      unpin t fr;
      raise e
  | `Leaf v -> (fr, v)
  | `Next (v, next, kind) -> (
      let nfr =
        match pin t next with
        | nfr -> nfr
        | exception e ->
            unpin t fr;
            raise e
      in
      (* CP de-allocation defence (see the section comment). *)
      match Olc.validate fr v with
      | exception e ->
          unpin t nfr;
          unpin t fr;
          raise e
      | () ->
          (match kind with
          | `Side level ->
              Atomic.incr t.c_side;
              (* Validated side chase: pid and level proven un-torn. *)
              maybe_schedule_posting t ~level ~sibling:next ~anchor:point
          | `Child -> ());
          unpin t fr;
          olc_step t ~point nfr)

(* ---------- splits ---------- *)

(* Extract a sub-brick of [region] holding between 1/3 and 2/3 of [points]
   (the hB splitting guarantee), by walking medians. *)
let choose_extraction ~k ~region ~points =
  let n = List.length points in
  let lo_t = n / 3 and hi_t = 2 * n / 3 in
  let rec go region points depth =
    let n_here = List.length points in
    if depth > 8 * k || n_here < 2 then region
    else begin
      let dim = depth mod k in
      let coords = List.map (fun (p, _) -> p.(dim)) points |> List.sort compare in
      let coord = List.nth coords (List.length coords / 2) in
      let lo, hi = split_brick region ~dim ~coord in
      let in_lo = List.filter (fun (p, _) -> brick_contains lo p) points in
      let n_lo = List.length in_lo in
      let n_hi = n_here - n_lo in
      if n_lo = 0 || n_hi = 0 then go region points (depth + 1)
      else if n_lo >= lo_t && n_lo <= hi_t then lo
      else if n_hi >= lo_t && n_hi <= hi_t then hi
      else if n_lo > n_hi then go lo in_lo (depth + 1)
      else go hi (List.filter (fun (p, _) -> brick_contains hi p) points) (depth + 1)
    end
  in
  go region points 0

(* Fallback data split for nodes whose kd-tree is fragmented (no single
   Here leaf holds two points): extract the heavier kd-root subtree with
   its points and markers — the general hB subtree extraction. *)
let split_data_subtree t txn fr =
  let p = page fr in
  let brick = node_brick p in
  match node_kd p with
  | Hkd.Leaf _ -> None
  | Hkd.Split { dim; coord; left; right } ->
      let take_right = Hkd.size right >= Hkd.size left in
      let moved_kd = if take_right then right else left in
      let blo, bhi = split_brick brick ~dim ~coord in
      let bq = if take_right then bhi else blo in
      let records =
        List.init (record_count p) (fun i ->
            let pt, v = record_of_cell (Page.get p (base + i)) in
            (pt, (base + i, v)))
      in
      let moving = List.filter (fun (pt, _) -> brick_contains bq pt) records in
      let qfr = Env.alloc_page t.env txn ~kind:Page.Data ~level:0 in
      update t txn qfr (Page_op.Insert_slot { slot = 0; cell = brick_cell bq });
      update t txn qfr (Page_op.Insert_slot { slot = 1; cell = Hkd.encode moved_kd });
      List.iteri
        (fun i (pt, (_, v)) ->
          update t txn qfr
            (Page_op.Insert_slot { slot = base + i; cell = record_cell ~point:pt ~value:v }))
        moving;
      let slots =
        List.map (fun (_, (slot, _)) -> slot) moving |> List.sort compare |> List.rev
      in
      List.iter
        (fun slot ->
          update t txn fr (Page_op.Delete_slot { slot; cell = Page.get p slot }))
        slots;
      let qpid = Page.id (page qfr) in
      set_kd t txn fr
        (if take_right then
           Hkd.Split { dim; coord; left; right = Hkd.Leaf (Hkd.Sibling qpid) }
         else Hkd.Split { dim; coord; left = Hkd.Leaf (Hkd.Sibling qpid); right });
      Atomic.incr t.c_data_splits;
      unpin t qfr;
      Some (qpid, bq)

(* Split the data node in [fr] (X-latched): extract a brick of points into
   a new sibling and leave a sibling marker behind (one atomic action).
   Returns the sibling and its brick, or None if the node cannot split. *)
let split_data_node t txn fr =
  let p = page fr in
  let kd = node_kd p in
  let brick = node_brick p in
  (* Points grouped by the Here leaf that owns them; split the fullest. *)
  let regions =
    Hkd.leaf_regions kd brick
    |> List.filter (fun (_, tgt) -> tgt = Hkd.Here)
  in
  let records =
    List.init (record_count p) (fun i ->
        let pt, v = record_of_cell (Page.get p (base + i)) in
        (pt, (base + i, v)))
  in
  let best =
    List.fold_left
      (fun acc (region, _) ->
        let mine = List.filter (fun (pt, _) -> brick_contains region pt) records in
        match acc with
        | Some (_, best_pts) when List.length best_pts >= List.length mine -> acc
        | _ -> Some (region, mine))
      None regions
  in
  match best with
  | None -> split_data_subtree t txn fr
  | Some (_, pts) when List.length pts < 2 -> split_data_subtree t txn fr
  | Some (region, pts) ->
      let b = choose_extraction ~k:t.k ~region ~points:pts in
      let moving = List.filter (fun (pt, _) -> brick_contains b pt) pts in
      if moving = [] || List.length moving = List.length records then None
      else begin
        let qfr = Env.alloc_page t.env txn ~kind:Page.Data ~level:0 in
        update t txn qfr (Page_op.Insert_slot { slot = 0; cell = brick_cell b });
        update t txn qfr
          (Page_op.Insert_slot { slot = 1; cell = Hkd.encode (Hkd.Leaf Hkd.Here) });
        List.iteri
          (fun i (pt, (_, v)) ->
            update t txn qfr
              (Page_op.Insert_slot { slot = base + i; cell = record_cell ~point:pt ~value:v }))
          moving;
        (* Remove moved records from the original (highest slots first). *)
        let slots = List.map (fun (_, (slot, _)) -> slot) moving |> List.sort compare |> List.rev in
        List.iter
          (fun slot ->
            update t txn fr (Page_op.Delete_slot { slot; cell = Page.get p slot }))
          slots;
        let qpid = Page.id (page qfr) in
        set_kd t txn fr (Hkd.carve kd ~region:brick ~brick:b (Hkd.Sibling qpid));
        Atomic.incr t.c_data_splits;
        Crash_point.hit "hb.split.linked";
        unpin t qfr;
        Some (qpid, b)
      end

(* Split the index node in [fr] (X-latched) at its kd root hyperplane: the
   right subtree moves to a new sibling; one kd-root child now points at it
   (the section 2.2.3 adjustment). Children referenced on both sides become
   multi-parent and are marked (section 3.3). *)
let split_index_node t txn fr =
  let p = page fr in
  let brick = node_brick p in
  match node_kd p with
  | Hkd.Leaf _ -> None
  | Hkd.Split { dim; coord; left; right } ->
      let total = Hkd.size left + Hkd.size right in
      let balanced =
        let smaller = min (Hkd.size left) (Hkd.size right) in
        4 * smaller >= total
      in
      let kept, moved, bq, new_kd =
        if balanced then begin
          (* Simple case (section 3.2.2): delegate a whole kd-root subtree —
             a union of child subspaces; one kd-root child then points at
             the new sibling (the section 2.2.3 hyperplane-split
             adjustment). Placeholder 0 is patched once the sibling's pid
             is known. *)
          let take_right = Hkd.size right >= Hkd.size left in
          let moved = if take_right then right else left in
          let blo, bhi = split_brick brick ~dim ~coord in
          if take_right then
            ( left, moved, bhi,
              fun q -> Hkd.Split { dim; coord; left; right = Hkd.Leaf (Hkd.Sibling q) } )
          else
            ( right, moved, blo,
              fun q -> Hkd.Split { dim; coord; left = Hkd.Leaf (Hkd.Sibling q); right } )
        end
        else begin
          (* Unbalanced: split by a fresh hyperplane through the node's
             space, CLIPPING the child terms that straddle it (section
             3.2.2). Cut along the widest finite extent of the brick at the
             median of leaf-region centres. *)
          let leaves = Hkd.leaf_regions (Hkd.Split { dim; coord; left; right }) brick in
          let finite v lo hi = if v = neg_infinity then lo else if v = infinity then hi else v in
          let centers d =
            List.map
              (fun ((r : Hb_space.brick), _) ->
                (finite r.low.(d) 0.0 1.0 +. finite r.high.(d) 0.0 1.0) /. 2.0)
              leaves
            |> List.sort compare
          in
          let d = dim in
          let cs = centers d in
          let cut = List.nth cs (List.length cs / 2) in
          let blo, bhi = split_brick brick ~dim:d ~coord:cut in
          let kd0 = Hkd.Split { dim; coord; left; right } in
          let kd_lo = Hkd.prune kd0 ~region:brick ~box:blo in
          let kd_hi = Hkd.prune kd0 ~region:brick ~box:bhi in
          ( kd_lo, kd_hi, bhi,
            fun q ->
              Hkd.Split
                { dim = d; coord = cut; left = kd_lo; right = Hkd.Leaf (Hkd.Sibling q) } )
        end
      in
      if Hkd.size moved < 1 || (balanced && Hkd.size moved < 2) then None
      else begin
      let qfr = Env.alloc_page t.env txn ~kind:Page.Index ~level:(Page.level p) in
      update t txn qfr (Page_op.Insert_slot { slot = 0; cell = brick_cell bq });
      update t txn qfr (Page_op.Insert_slot { slot = 1; cell = Hkd.encode moved });
      let qpid = Page.id (page qfr) in
      set_kd t txn fr (new_kd qpid);
      (* Multi-parent marking: children appearing under both halves —
         their index terms were clipped. *)
      let lc = Hkd.children kept and rc = Hkd.children moved in
      List.iter (fun c -> if List.mem c rc then Atomic.incr t.c_clipped) lc;
      List.iter
        (fun c ->
          if List.mem c rc then begin
            let cfr = pin t c in
            latch cfr Latch.X;
            let flags = Page.flags (page cfr) in
            if flags land multi_parent_flag = 0 then begin
              update t txn cfr
                (Page_op.Set_flags
                   { old_flags = flags; new_flags = flags lor multi_parent_flag });
              Atomic.incr t.c_multi
            end;
            unlatch cfr Latch.X;
            unpin t cfr
          end)
        lc;
      Atomic.incr t.c_index_splits;
      unpin t qfr;
      Some (qpid, bq)
      end

(* Root overflow: demote the root's entire content into a fresh left child
   L, extract a sibling Q from L, and turn the (immovable) root into an
   index node routing to both. One atomic action; no posting needed. *)
let grow_root t txn fr ~split_node =
  let p = page fr in
  let brick = node_brick p in
  let lfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
  let n = Page.slot_count p in
  for i = 0 to n - 1 do
    update t txn lfr (Page_op.Insert_slot { slot = i; cell = Page.get p i })
  done;
  (* The root's page is X-latched by us; nothing reaches L yet, so we can
     split L without latching it. *)
  latch lfr Latch.X;
  let split_result = split_node t txn lfr in
  unlatch lfr Latch.X;
  let cells = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
  update t txn fr (Page_op.Clear { cells = List.rev cells });
  update t txn fr
    (Page_op.Reformat
       {
         old_kind = Page.kind p;
         new_kind = Page.Index;
         old_level = Page.level p;
         new_level = Page.level p + 1;
       });
  update t txn fr (Page_op.Insert_slot { slot = 0; cell = brick_cell brick });
  let lpid = Page.id (page lfr) in
  let root_kd =
    match split_result with
    | Some (qpid, bq) ->
        Hkd.carve (Hkd.Leaf (Hkd.Child lpid)) ~region:brick ~brick:bq
          (Hkd.Child qpid)
    | None -> Hkd.Leaf (Hkd.Child lpid)
  in
  update t txn fr (Page_op.Insert_slot { slot = 1; cell = Hkd.encode root_kd });
  Atomic.incr t.c_root_splits;
  Crash_point.hit "hb.root.grown";
  unpin t lfr

(* One split attempt for the data node owning [point]; separate atomic
   action, re-tested after descending. *)
let split_for_insert t ~point ~need =
  Atomic_action.run (mgr t) (fun txn ->
      let fr = descend t ~point ~target:0 ~mode:Latch.U in
      let p = page fr in
      if Page.will_fit p (need + Page.slot_overhead) then begin
        unlatch fr Latch.U;
        unpin t fr
      end
      else begin
        promote fr;
        if Page.id p = t.root then
          grow_root t txn fr ~split_node:split_data_node
        else begin
          match split_data_node t txn fr with
          | Some (qpid, b) ->
              let anchor =
                Array.init t.k (fun i ->
                    if b.low.(i) = neg_infinity then
                      if b.high.(i) = infinity then 0.0 else b.high.(i) -. 1e-9
                    else b.low.(i))
              in
              Txn.add_on_commit txn (fun () ->
                  maybe_schedule_posting t ~level:0 ~sibling:qpid ~anchor)
          | None -> ()
        end;
        unlatch fr Latch.X;
        unpin t fr
      end)

(* ---------- index-term posting ---------- *)

let do_post_action t ~level ~address ~anchor =
  Atomic_action.run (mgr t) (fun txn ->
      let rec attempt tries =
        if tries > 50 then failwith "hb: posting cannot make progress";
        let fr = descend t ~point:anchor ~target:level ~mode:Latch.U in
        let p = page fr in
        let kd = node_kd p in
        if List.mem address (Hkd.children kd) then begin
          (* Already posted: the state was re-tested and needs nothing
             (idempotent completion). *)
          unlatch fr Latch.U;
          unpin t fr
        end
        else begin
          match Hkd.walk kd anchor with
          | Hkd.Here | Hkd.Sibling _ ->
              unlatch fr Latch.U;
              unpin t fr
          | Hkd.Child n ->
              (* Recover the delegated brick from the splitting node's own
                 sibling marker (Verify Split: the posting may no longer be
                 needed). *)
              let nfr = pin t n in
              latch nfr Latch.S;
              let b =
                Hkd.region_of_target (node_kd (page nfr)) (node_brick (page nfr))
                  (Hkd.Sibling address)
              in
              let n_multi = Page.flags (page nfr) land multi_parent_flag <> 0 in
              unlatch nfr Latch.S;
              unpin t nfr;
              (match b with
              | None ->
                  unlatch fr Latch.U;
                  unpin t fr
              | Some b ->
                  (* The delegated brick came from a splitting node that is
                     itself multi-parent: descents arriving through its
                     other parents side-step the same sibling marker and
                     re-post [address] into THEIR parent, so the child is
                     about to gain a second index term in a different
                     node. It must carry the multi-parent flag before that
                     second term can exist — consolidation re-tests the
                     flag and would otherwise free the child behind the
                     extra parent's back (section 3.3 forbids
                     consolidating multi-parent nodes). *)
                  let dead = ref false in
                  if n_multi then begin
                    let afr = pin t address in
                    latch afr Latch.X;
                    let ap = page afr in
                    if Page.kind ap = Page.Free then dead := true
                    else begin
                      let flags = Page.flags ap in
                      if flags land multi_parent_flag = 0 then begin
                        update t txn afr
                          (Page_op.Set_flags
                             {
                               old_flags = flags;
                               new_flags = flags lor multi_parent_flag;
                             });
                        Atomic.incr t.c_multi
                      end
                    end;
                    unlatch afr Latch.X;
                    unpin t afr
                  end;
                  if !dead then begin
                    (* The sibling was consolidated away while this
                       posting was queued; nothing to index. *)
                    unlatch fr Latch.U;
                    unpin t fr
                  end
                  else begin
                  promote fr;
                  let brick = node_brick p in
                  let kd' = Hkd.carve kd ~region:brick ~brick:b (Hkd.Child address) in
                  let cell = Hkd.encode kd' in
                  let old_cell = Page.get p 1 in
                  ignore old_cell;
                  if Page.can_replace p 1 (String.length cell) then begin
                    set_kd t txn fr kd';
                    (* Count clipped postings: the child now occupies more
                       than one kd leaf. *)
                    let occurrences =
                      Hkd.leaf_regions kd' brick
                      |> List.filter (fun (_, tgt) -> tgt = Hkd.Child address)
                      |> List.length
                    in
                    if occurrences > 1 then Atomic.incr t.c_clipped;
                    Atomic.incr t.c_posted;
                    Crash_point.hit "hb.post.updated";
                    unlatch fr Latch.X;
                    unpin t fr
                  end
                  else begin
                    (* No room for the bigger kd-tree: split this index
                       node (or grow the root) and retry. *)
                    (if Page.id p = t.root then
                       grow_root t txn fr ~split_node:split_index_node
                     else
                       match split_index_node t txn fr with
                       | Some (qpid, bq) ->
                           let anchor_q =
                             Array.init t.k (fun i ->
                                 if bq.low.(i) = neg_infinity then
                                   if bq.high.(i) = infinity then 0.0
                                   else bq.high.(i) -. 1e-9
                                 else bq.low.(i))
                           in
                           maybe_schedule_posting t ~level:(Page.level p)
                             ~sibling:qpid ~anchor:anchor_q
                       | None -> failwith "hb: index node cannot split");
                    unlatch fr Latch.X;
                    unpin t fr;
                    attempt (tries + 1)
                  end
                  end)
        end
      in
      attempt 0)

(* ---------- creation ---------- *)


(* ---------- empty-node consolidation (section 3.3) ----------

   When a data node C becomes empty it can be consolidated away, under the
   paper's constraints: C must be referenced by index terms in a single
   parent (multi-parent nodes — flagged when a clipped child's parents
   separated — are never consolidated), and its CONTAINING node N (the one
   holding the Sibling(C) marker) must be referenced by the same parent.
   The action re-tests everything (idempotent completion); on success the
   delegated space folds back into N's directly-contained space, every
   Child(C) marker in the parent is rerouted to N (which is responsible for
   that space), and C is de-allocated as a logged node update. *)

let consolidate_action : (t -> pid:int -> anchor:float array -> unit) ref =
  ref (fun _ ~pid:_ ~anchor:_ -> assert false)

let maybe_schedule_consolidation t ~pid ~anchor =
  if pid <> t.root then begin
    Mutex.lock t.pending_mu;
    let key = -pid (* distinct namespace from posting dedup *) in
    let fresh = not (Hashtbl.mem t.pending key) in
    if fresh then Hashtbl.replace t.pending key ();
    Mutex.unlock t.pending_mu;
    if fresh then
      Env.schedule t.env (fun () ->
          Mutex.lock t.pending_mu;
          Hashtbl.remove t.pending key;
          Mutex.unlock t.pending_mu;
          !consolidate_action t ~pid ~anchor)
  end

let do_consolidate t ~pid ~anchor =
  let skipped () = Atomic.incr t.c_consol_skip in
  Atomic_action.run (mgr t) (fun txn ->
      let tall_enough =
        let rf = pin t t.root in
        let h = Page.level (page rf) in
        unpin t rf;
        h >= 1
      in
      if not tall_enough then skipped ()
      else begin
        let pfr = descend t ~point:anchor ~target:1 ~mode:Latch.U in
        let pp = page pfr in
        let give_up () =
          unlatch pfr Latch.U;
          unpin t pfr;
          skipped ()
        in
        let pkd = node_kd pp in
        if not (List.mem pid (Hkd.children pkd)) then give_up ()
        else begin
          (* Find the containing node among this parent's other children. *)
          let container =
            List.find_opt
              (fun c ->
                c <> pid
                &&
                match pin t c with
                | exception Not_found -> false
                | cf ->
                    latch cf Latch.S;
                    let has = List.mem pid (Hkd.siblings (node_kd (page cf))) in
                    unlatch cf Latch.S;
                    unpin t cf;
                    has)
              (Hkd.children pkd)
          in
          match container with
          | None -> give_up ()
          | Some n_pid ->
              promote pfr;
              let nfr = pin t n_pid in
              latch nfr Latch.X;
              let cfr = pin t pid in
              latch cfr Latch.X;
              let release_all () =
                unlatch cfr Latch.X;
                unpin t cfr;
                unlatch nfr Latch.X;
                unpin t nfr;
                unlatch pfr Latch.X;
                unpin t pfr
              in
              let cp = page cfr and np = page nfr in
              (* Re-test: still empty, still a data node, not multi-parent,
                 container still references it. *)
              if
                Page.kind cp <> Page.Data
                || Page.level cp <> 0
                || record_count cp > 0
                || Page.flags cp land multi_parent_flag <> 0
                || not (List.mem pid (Hkd.siblings (node_kd np)))
                || Hkd.siblings (node_kd cp) <> []
                (* C delegating onward would need its markers moved; the
                   simple (and common: fresh empty node) case only. *)
              then begin
                release_all ();
                skipped ()
              end
              else begin
                (* The delegated space folds back into the container; the
                   kd-tree is simplified so repeated consolidations do not
                   fragment it into slivers. *)
                set_kd t txn nfr
                  (Hkd.simplify
                     (Hkd.replace_target (node_kd np) ~from:(Hkd.Sibling pid)
                        ~to_:Hkd.Here));
                (* All of the parent's markers for C reroute to N. *)
                set_kd t txn pfr
                  (Hkd.simplify
                     (Hkd.replace_target (node_kd pp) ~from:(Hkd.Child pid)
                        ~to_:(Hkd.Child n_pid)));
                Crash_point.hit "hb.consolidate.linked";
                Env.dealloc_page t.env txn cfr;
                Crash_point.hit "hb.merge.freed";
                Atomic.incr t.c_consol;
                release_all ()
              end
        end
      end)

let () = consolidate_action := fun t ~pid ~anchor -> do_consolidate t ~pid ~anchor

let rec logical_undo t ~comp ~txn ~prev ~undo_next =
  (* Compensations are keyed by the record cell (which embeds the point):
     Remove undoes an insert, Put restores a deleted/overwritten record —
     wherever committed structure changes have moved the point since. *)
  let cell_of = function Logical.Remove { key } -> key | Logical.Put { cell } -> cell in
  let point, _ = record_of_cell (cell_of comp) in
  let fr = descend t ~point ~target:0 ~mode:Latch.U in
  let p = page fr in
  let apply_clr op =
    (* Dirty (and log the full-page image) before the CLR is appended:
       the image must precede every record it covers. *)
    Buffer_pool.mark_dirty fr;
    let lsn =
      Log_manager.append (Env.log t.env) ~prev ~txn
        (Log_record.Clr { page = Page.id p; op; undo_next })
    in
    Page_op.redo p op;
    Page.set_lsn p lsn;
    lsn
  in
  match comp with
  | Logical.Remove _ -> (
      match find_record p point with
      | Some (slot, _) ->
          promote fr;
          let cell = Page.get p slot in
          let lsn = apply_clr (Page_op.Delete_slot { slot; cell }) in
          unlatch fr Latch.X;
          unpin t fr;
          lsn
      | None ->
          unlatch fr Latch.U;
          unpin t fr;
          Lsn.null)
  | Logical.Put { cell } -> (
      match find_record p point with
      | Some (slot, _) ->
          let old_cell = Page.get p slot in
          if String.equal old_cell cell then begin
            unlatch fr Latch.U;
            unpin t fr;
            Lsn.null
          end
          else if
            String.length cell <= String.length old_cell
            || Page.will_fit p (String.length cell)
          then begin
            promote fr;
            let lsn = apply_clr (Page_op.Replace_slot { slot; old_cell; new_cell = cell }) in
            unlatch fr Latch.X;
            unpin t fr;
            lsn
          end
          else begin
            unlatch fr Latch.U;
            unpin t fr;
            split_for_insert t ~point ~need:(String.length cell);
            logical_undo t ~comp ~txn ~prev ~undo_next
          end
      | None ->
          if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
            promote fr;
            let lsn =
              apply_clr (Page_op.Insert_slot { slot = Page.slot_count p; cell })
            in
            unlatch fr Latch.X;
            unpin t fr;
            lsn
          end
          else begin
            unlatch fr Latch.U;
            unpin t fr;
            split_for_insert t ~point ~need:(String.length cell);
            logical_undo t ~comp ~txn ~prev ~undo_next
          end)

let attach env ~name ~root ~k =
  {
    env;
    name;
    root;
    k;
    combiner = None;
    c_inserts = Atomic.make 0;
    c_searches = Atomic.make 0;
    c_data_splits = Atomic.make 0;
    c_index_splits = Atomic.make 0;
    c_root_splits = Atomic.make 0;
    c_side = Atomic.make 0;
    c_posted = Atomic.make 0;
    c_clipped = Atomic.make 0;
    c_multi = Atomic.make 0;
    c_consol = Atomic.make 0;
    c_consol_skip = Atomic.make 0;
    pending = Hashtbl.create 16;
    pending_mu = Mutex.create ();
  }

let attach env ~name ~root ~k =
  let t = attach env ~name ~root ~k in
  Logical.register_tree root (fun ~tree:_ ~comp ~txn ~prev ~undo_next ->
      logical_undo t ~comp ~txn ~prev ~undo_next);
  t

(* Combiner construction needs the insert path below; wired up after
   [apply_batch] is defined. *)
let attach_combiner_fwd : (t -> unit) ref = ref (fun _ -> ())

let create env ~name ~dims:k =
  if k < 1 || k > 8 then invalid_arg "Hb.create: dims must be in 1..8";
  let root = Env.create_tree env ~name:("hb:" ^ name) ~kind:Page.Data ~level:0 in
  let t = attach env ~name ~root ~k in
  !attach_combiner_fwd t;
  Atomic_action.run (mgr t) (fun txn ->
      let fr = pin t root in
      latch fr Latch.X;
      update t txn fr
        (Page_op.Insert_slot { slot = 0; cell = brick_cell (whole_brick k) });
      update t txn fr
        (Page_op.Insert_slot { slot = 1; cell = Hkd.encode (Hkd.Leaf Hkd.Here) });
      (* Remember the dimensionality in the root's flag bits. *)
      update t txn fr (Page_op.Set_flags { old_flags = 0; new_flags = k lsl 8 });
      unlatch fr Latch.X;
      unpin t fr);
  t

let open_existing env ~name =
  match Env.find_tree env ~name:("hb:" ^ name) with
  | None -> None
  | Some root ->
      let pool = Env.pool env in
      let fr = Buffer_pool.pin pool root in
      let k = Page.flags (page fr) lsr 8 in
      Buffer_pool.unpin pool fr;
      if k = 0 then None
      else begin
        let t = attach env ~name ~root ~k in
        !attach_combiner_fwd t;
        Some t
      end

(* ---------- operations ---------- *)

let with_autocommit ?txn t f =
  match txn with
  | Some txn -> f txn
  | None -> (
      let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
      match f txn with
      | v ->
          Txn_mgr.commit (mgr t) txn;
          ignore (Env.drain t.env);
          v
      | exception (Crash_point.Crash_requested _ as e) -> raise e
      | exception e ->
          if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
          raise e)

let check_point t point =
  if Array.length point <> t.k then
    invalid_arg (Printf.sprintf "hb: expected %d dimensions" t.k)

let insert_in_txn t txn ~point ~value =
  let cell = record_cell ~point ~value in
  (fun txn ->
      let rec attempt tries =
        if tries > 200 then failwith "hb.insert: too many restarts";
        let fr = descend t ~point ~target:0 ~mode:Latch.U in
        let p = page fr in
        let lundo comp =
          if (Env.config t.env).Env.page_oriented_undo then None
          else Some { Log_record.tree = t.root; comp }
        in
        match find_record p point with
        | Some (slot, _) ->
            let old_cell = Page.get p slot in
            if
              String.length cell <= String.length old_cell
              || Page.will_fit p (String.length cell)
            then begin
              promote fr;
              ignore
                (Txn_mgr.update
                   ?lundo:(lundo (Logical.Put { cell = old_cell }))
                   (mgr t) txn fr
                   (Page_op.Replace_slot { slot; old_cell; new_cell = cell }));
              unlatch fr Latch.X;
              unpin t fr
            end
            else begin
              unlatch fr Latch.U;
              unpin t fr;
              split_for_insert t ~point ~need:(String.length cell);
              attempt (tries + 1)
            end
        | None ->
            if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
              promote fr;
              ignore
                (Txn_mgr.update
                   ?lundo:(lundo (Logical.Remove { key = cell }))
                   (mgr t) txn fr
                   (Page_op.Insert_slot { slot = Page.slot_count p; cell }));
              unlatch fr Latch.X;
              unpin t fr
            end
            else begin
              unlatch fr Latch.U;
              unpin t fr;
              split_for_insert t ~point ~need:(String.length cell);
              attempt (tries + 1)
            end
      in
      attempt 0)
    txn

(* Combined insert batch: the leader applies every request its slot
   drained inside one User transaction, so one WAL flush enrollment
   (credited with the batch's fan-in via [~commits]) covers them all.
   Each point still takes its own CNS descent — spatial keys rarely share
   a brick — but N commit flushes collapse into one. A failure aborts the
   batch transaction and propagates (Combine broadcasts it to the parked
   followers): retrying on the direct path instead would deadlock against
   whatever latch the failed descent left behind, and mask the defect. *)
let apply_batch t (reqs : (float array * string) array) =
  let n = Array.length reqs in
  let results = Array.make n Handback in
  let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
  (try
     Array.iteri
       (fun i (point, value) ->
         insert_in_txn t txn ~point ~value;
         results.(i) <- Applied)
       reqs;
     Crash_point.hit Combine.crash_point_applied;
     Txn_mgr.commit ~commits:n (mgr t) txn;
     ignore (Env.drain t.env)
   with
   | Crash_point.Crash_requested _ as e -> raise e
   | e ->
       if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
       raise e);
  results

let () =
  attach_combiner_fwd :=
    fun t ->
      let c = Env.config t.env in
      if c.Env.combine then
        t.combiner <-
          Some
            (Combine.create ~slots:c.Env.combine_slots
               ~window_us:c.Env.combine_window_us
               ~apply:(fun reqs -> apply_batch t reqs)
               ())

let insert ?txn t ~point ~value =
  check_point t point;
  Atomic.incr t.c_inserts;
  match (txn, t.combiner) with
  | None, Some combiner -> (
      match
        Combine.submit combiner ~hash:(Hashtbl.hash point) (point, value)
      with
      | Applied -> ()
      | Handback ->
          Combine.note_handback ();
          with_autocommit t (fun txn -> insert_in_txn t txn ~point ~value))
  | _ -> with_autocommit ?txn t (fun txn -> insert_in_txn t txn ~point ~value)

let delete ?txn t point =
  check_point t point;
  with_autocommit ?txn t (fun txn ->
      let fr = descend t ~point ~target:0 ~mode:Latch.U in
      let p = page fr in
      match find_record p point with
      | Some (slot, _) ->
          promote fr;
          let cell = Page.get p slot in
          let lundo =
            if (Env.config t.env).Env.page_oriented_undo then None
            else Some { Log_record.tree = t.root; comp = Logical.Put { cell } }
          in
          ignore
            (Txn_mgr.update ?lundo (mgr t) txn fr
               (Page_op.Delete_slot { slot; cell }));
          let now_empty = record_count p = 0 in
          let pid = Page.id p in
          unlatch fr Latch.X;
          unpin t fr;
          if now_empty && (Env.config t.env).Env.consolidation then
            maybe_schedule_consolidation t ~pid ~anchor:point;
          true
      | None ->
          unlatch fr Latch.U;
          unpin t fr;
          false)

let find_latched t point =
  let fr = descend t ~point ~target:0 ~mode:Latch.S in
  let r = Option.map snd (find_record (page fr) point) in
  unlatch fr Latch.S;
  unpin t fr;
  r

let find_olc t point =
  let fr, v = olc_step t ~point (pin t t.root) in
  match
    let r =
      Olc.decoding fr v (fun () ->
          Option.map snd (find_record (page fr) point))
    in
    (* The record bytes were copied out above; prove the reads were not
       torn before anyone sees them. *)
    Olc.validate fr v;
    r
  with
  | r ->
      unpin t fr;
      r
  | exception e ->
      unpin t fr;
      raise e

let find t point =
  check_point t point;
  Atomic.incr t.c_searches;
  let r =
    if olc_enabled t then
      Olc.protect
        ~attempt:(fun () -> find_olc t point)
        ~fallback:(fun () -> find_latched t point)
        ()
    else find_latched t point
  in
  ignore (Env.drain t.env);
  r

let query t ~low ~high ~init ~f =
  let box = { low; high } in
  let visited = Hashtbl.create 32 in
  let rec visit pid acc =
    if Hashtbl.mem visited pid then acc
    else begin
      Hashtbl.replace visited pid ();
      let fr = pin t pid in
      latch fr Latch.S;
      let p = page fr in
      let brick = node_brick p in
      let kd = node_kd p in
      (* Collect matching records (leaves) and the pages to visit next,
         releasing the latch before recursing. *)
      let here =
        if Page.level p = 0 then
          List.init (record_count p) (fun i -> record_of_cell (Page.get p (base + i)))
          |> List.filter (fun (pt, _) -> brick_contains box pt)
        else []
      in
      let next =
        Hkd.leaf_regions kd brick
        |> List.filter_map (fun (region, tgt) ->
               if not (brick_intersects region box) then None
               else
                 match tgt with
                 | Hkd.Here -> None
                 | Hkd.Sibling s -> Some s
                 | Hkd.Child c -> Some c)
      in
      unlatch fr Latch.S;
      unpin t fr;
      let acc = List.fold_left (fun acc (pt, v) -> f acc pt v) acc here in
      List.fold_left (fun acc pid -> visit pid acc) acc next
    end
  in
  visit t.root init

let count t =
  query t
    ~low:(Array.make t.k neg_infinity)
    ~high:(Array.make t.k infinity)
    ~init:0
    ~f:(fun n _ _ -> n + 1)

(* ---------- verification ---------- *)

let verify t =
  let module K = Hb_space.Make (struct
    let k = t.k
  end) in
  let module W = Wellformed.Make (K) in
  let read pid =
    match pin t pid with
    | exception Not_found -> None
    | fr ->
        let p = page fr in
        let view =
          match Page.kind p with
          | Page.Free | Page.Meta -> None
          | Page.Data | Page.Index ->
              let brick = node_brick p in
              let kd = node_kd p in
              let leaves = Hkd.leaf_regions kd brick in
              let sib_regions =
                List.filter_map
                  (fun (r, tgt) ->
                    match tgt with Hkd.Sibling s -> Some (r, s) | _ -> None)
                  leaves
              in
              let child_regions =
                List.filter_map
                  (fun (r, tgt) ->
                    match tgt with Hkd.Child c -> Some (r, c) | _ -> None)
                  leaves
              in
              let holey_of b = { outer = b; holes = [] } in
              Some
                {
                  W.id = pid;
                  level = Page.level p;
                  responsible = holey_of brick;
                  directly_contained =
                    { outer = brick; holes = List.map fst sib_regions };
                  index_terms = List.map (fun (r, c) -> (holey_of r, c)) child_regions;
                  sibling_terms = List.map (fun (r, s) -> (holey_of r, s)) sib_regions;
                }
        in
        unpin t fr;
        view
  in
  W.check ~root:t.root ~read

let stats t =
  {
    inserts = Atomic.get t.c_inserts;
    searches = Atomic.get t.c_searches;
    data_splits = Atomic.get t.c_data_splits;
    index_splits = Atomic.get t.c_index_splits;
    root_splits = Atomic.get t.c_root_splits;
    side_traversals = Atomic.get t.c_side;
    postings_completed = Atomic.get t.c_posted;
    clipped_postings = Atomic.get t.c_clipped;
    multi_parent_marks = Atomic.get t.c_multi;
    consolidations = Atomic.get t.c_consol;
    consolidations_skipped = Atomic.get t.c_consol_skip;
  }

let () =
  post_action :=
    fun t ~level ~address ~anchor -> do_post_action t ~level ~address ~anchor
