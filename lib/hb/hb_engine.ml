(* The hB-tree behind [Pitree_core.Engine.S]. The hB-tree indexes
   multiattribute points, not strings, so the adapter embeds each string
   key as a deterministic point: coordinate [i] hashes [(i, key)] into
   [0, 1). The embedding is injective for all practical purposes (a
   collision needs [dims] simultaneous 30-bit hash collisions) and spreads
   keys uniformly over the cube — exactly the workload the node splitter
   expects. *)

module Engine = Pitree_core.Engine

let point_of_key ~dims key =
  Array.init dims (fun i ->
      float_of_int (Hashtbl.hash (i, key)) /. 1073741824.0)

module Impl = struct
  type t = Hb.t

  let engine_name = "hb-tree"
  let point t key = point_of_key ~dims:(Hb.dims t) key
  let insert ?txn t ~key ~value = Hb.insert ?txn t ~point:(point t key) ~value
  let delete ?txn t key = Hb.delete ?txn t (point t key)
  let find ?txn:_ t key = Hb.find t (point t key)

  (* Hashing destroys key order, so an ordered scan cannot be served;
     report 0 like the baselines (Engine.S documents this). *)
  let scan ?txn:_ _ ~low:_ ~n:_ = 0
end

include Impl

let inst t = Engine.Inst ((module Impl), t)
