(** The hB-tree instance of the Pi-tree (paper section 2.2.3, Figure 2;
    Lomet & Salzberg, TODS 1990) — a multiattribute point index.

    Nodes are responsible for {e holey bricks}: an axis-aligned box minus
    boxes extracted by splits. Each node carries an intra-node kd-tree whose
    leaves route a point to the node itself ([Here]), to a {e sibling} that
    space was delegated to (the Pi-tree side pointer replacing the hB
    "external" markers, exactly as section 2.2.3 prescribes), or — in index
    nodes — to a {e child}.

    Structure changes follow the Pi-tree protocol: a data-node split
    extracts a sub-brick holding 1/3-2/3 of the content into a new sibling
    in one atomic action; the index term describing it is posted in a
    {e separate} atomic action, re-discovered lazily after a crash via the
    sibling marker. Posting a term whose brick straddles an existing
    parent partition {b clips} it (section 3.2.2): the child appears under
    both sides. An index-node split by a hyperplane keeps one kd-root child
    pointing at the new sibling (the adjustment this paper makes to the
    hB-tree), and children referenced on both sides are {b marked
    multi-parent} (section 3.3) — such nodes are never consolidated.

    This engine runs CNS (no consolidation of non-empty nodes) and
    auto-commits each operation; the full lock/move-lock protocol is
    exercised by the B-link engine. *)

type t

val create : Pitree_env.Env.t -> name:string -> dims:int -> t
val open_existing : Pitree_env.Env.t -> name:string -> t option
val env : t -> Pitree_env.Env.t
val dims : t -> int

val insert :
  ?txn:Pitree_txn.Txn.t -> t -> point:float array -> value:string -> unit
(** Pass [?txn] to join a caller-managed transaction (the caller commits).
    Without it, and with [Env.config.combine] on, the insert routes
    through the hot-key combining funnel: concurrent writers hashing to
    the same slot share one transaction and one WAL flush enrollment; a
    batch that cannot complete hands the request back to the ordinary
    autocommit path. *)

val delete : ?txn:Pitree_txn.Txn.t -> t -> float array -> bool
(** Delete the record at [point]; [false] if absent. With [?txn] the
    delete joins the caller's transaction (the caller commits). *)

val find : t -> float array -> string option

val query :
  t -> low:float array -> high:float array -> init:'a ->
  f:('a -> float array -> string -> 'a) -> 'a
(** Fold over the points inside the half-open box [low, high). *)

val count : t -> int

val verify : t -> Pitree_core.Wellformed.report
(** Generic Pi-tree well-formedness over holey-brick subspaces (sampled
    containment; exact for the unit-cube workloads of the tests). *)

type stats = {
  inserts : int;
  searches : int;
  data_splits : int;
  index_splits : int;
  root_splits : int;
  side_traversals : int;
  postings_completed : int;
  clipped_postings : int;  (** postings whose brick straddled a partition *)
  multi_parent_marks : int;
  consolidations : int;
      (** empty data nodes folded back into their containing sibling —
          only when single-parent, per the section 3.3 constraints *)
  consolidations_skipped : int;
}

val stats : t -> stats
