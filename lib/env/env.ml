module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch
module Latch_order = Pitree_sync.Latch_order
module Lsn = Pitree_wal.Lsn
module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Page_op = Pitree_wal.Page_op
module Recovery = Pitree_wal.Recovery
module Lock_manager = Pitree_lock.Lock_manager
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Snapshot = Pitree_txn.Snapshot
module Atomic_action = Pitree_txn.Atomic_action
module Codec = Pitree_util.Codec
module Crash_point = Pitree_util.Crash_point

type config = {
  page_size : int;
  pool_capacity : int;
  page_oriented_undo : bool;
  consolidation : bool;
  log_path : string option;
  wal_group_commit : bool;
  pool_shards : int option;  (* None: Buffer_pool picks (domain count) *)
  pool_pin_attempts : int option;  (* None: Buffer_pool default (20) *)
  pool_backoff_seed : int option;  (* seeds the pool's backoff jitter *)
  ckpt_log_bytes : int option;
  ckpt_interval_s : float option;
  olc_reads : bool;
      (* searches/scans descend latch-free, validating against per-node
         version words and falling back to S latches under contention;
         false restores the always-latched read path (baselines) *)
  combine : bool;
      (* non-transactional puts funnel through the hot-key combining
         layer (one descent / one latch / one log batch per hot slot);
         false restores one descent per write *)
  combine_slots : int;  (* publication slots per engine (pow2-rounded) *)
  combine_window_us : int;
      (* how long a hot slot's leader holds the election open so the
         storm can pile into its batch; 0 applies immediately *)
  si_txns : bool;
      (* snapshot-isolation MVCC: version timestamps come from the
         Txn_mgr's commit-ts allocator (so SI snapshots are consistent
         cuts) and the TSB gc horizon is clamped to
         min(oldest live snapshot - 1, checkpoint watermark);
         false keeps per-tree clocks and unclamped gc *)
}

let default_config =
  {
    page_size = 4096;
    pool_capacity = 4096;
    page_oriented_undo = false;
    consolidation = true;
    log_path = None;
    wal_group_commit = true;
    pool_shards = None;
    pool_pin_attempts = None;
    pool_backoff_seed = None;
    ckpt_log_bytes = None;
    ckpt_interval_s = None;
    olc_reads = true;
    combine = true;
    combine_slots = 64;
    combine_window_us = 0;
    si_txns = false;
  }

type stats = {
  pages_allocated : int;
  pages_freed : int;
  pages_reused : int;
  completions_run : int;
  checkpoints : int;
  ckpt_pages_written : int;
  ckpt_records_truncated : int;
  ckpt_bytes_truncated : int;
}

type t = {
  cfg : config;
  disk : Disk.t;
  log_ref : Log_manager.t ref;
  mutable pool_v : Buffer_pool.t;
  mutable locks_v : Lock_manager.t;
  mutable txns_v : Txn_mgr.t;
  mutable crashed : bool;
  tasks : (unit -> unit) Queue.t;
  tasks_mu : Mutex.t;
  mutable allocs : int;
  mutable deallocs : int;
  mutable reuses : int;
  mutable completions : int;
  (* --- checkpointer --- *)
  ckpt_mu : Mutex.t;  (* serializes whole checkpoints *)
  mutable ckpts : int;
  mutable ckpt_pages : int;
  mutable ckpt_records : int;
  mutable ckpt_bytes : int;
  mutable last_ckpt_bytes : int;  (* log bytes at the last checkpoint *)
  mutable ckpt_thread : Thread.t option;
  mutable ckpt_stop : bool;  (* read by the interval thread, under ckpt_mu *)
}

let meta_pid = 1

let config t = t.cfg
let pool t = t.pool_v
let log t = !(t.log_ref)
let locks t = t.locks_v
let txns t = t.txns_v

let enc_u32 v =
  let b = Buffer.create 4 in
  Codec.put_u32 b v;
  Buffer.contents b

let dec_u32 s = Codec.get_u32 (Codec.reader s)

(* Catalog cell: name, root pid, kind, level. Cell 0 of the meta page is the
   next-unallocated-pid counter; catalog entries occupy cells 1..n. *)
let enc_catalog ~name ~root ~kind ~level =
  let b = Buffer.create 32 in
  Codec.put_bytes b name;
  Codec.put_u32 b root;
  Codec.put_u8 b (Page.kind_to_int kind);
  Codec.put_u8 b level;
  Buffer.contents b

let dec_catalog s =
  let r = Codec.reader s in
  let name = Codec.get_bytes r in
  let root = Codec.get_u32 r in
  (name, root)

(* --- fuzzy / sharp checkpoints --- *)

(* The three instants of the checkpoint protocol a crash can land on; the
   chaos sweep drives all of them. Registered up front so harnesses can
   enumerate them before any checkpoint runs. *)
let crash_point_begin = "ckpt.begin.logged"
let crash_point_end = "ckpt.end.logged"
let crash_point_truncated = "ckpt.truncated"

(* Free-list instants: a page just popped off the free list for reuse, and
   a freed page just pushed onto it. Both sit inside the caller's atomic
   action, so a crash on either leaves a well-formed structure (the action
   rolls back whole). *)
let crash_point_free_reused = "free.reused"
let crash_point_free_pushed = "free.pushed"

let () =
  Crash_point.register crash_point_begin;
  Crash_point.register crash_point_end;
  Crash_point.register crash_point_truncated;
  Crash_point.register crash_point_free_reused;
  Crash_point.register crash_point_free_pushed

(* One protocol for both modes (ARIES section 5.4 shape):

   1. fence: append Begin_checkpoint and snapshot the ATT atomically with
      it (Txn_mgr.begin_checkpoint) — writers keep running;
   2. write back dirty pages: [`Fuzzy] incrementally (one S latch at a
      time — safe under concurrent writers), [`Sharp] via the
      stop-the-shard flush_all (no page latches: callers must have no
      concurrent page mutators, as in create/close);
   3. snapshot the dirty-page table. Taken AFTER write-back on purpose:
      any page still dirty here carries a rec_lsn bounding what redo must
      replay, and any page cleaned by step 2 has everything below the
      fence durably on disk — while updates appended after the fence are
      covered because the redo point never exceeds begin_lsn;
   4. append + force End_checkpoint {begin_lsn; dpt; att};
   5. publish the master record (checkpoint LSN + redo floor);
   6. truncate the log below min(redo floor, oldest live Begin).

   A crash between any two steps recovers from the PREVIOUS complete
   checkpoint: nothing is published until step 5, and truncation only
   discards what the just-published checkpoint makes unreachable. *)
let checkpoint ?(mode = `Sharp) t =
  Mutex.lock t.ckpt_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.ckpt_mu)
    (fun () ->
      let log = !(t.log_ref) in
      let begin_lsn, att = Txn_mgr.begin_checkpoint t.txns_v in
      Crash_point.hit crash_point_begin;
      let written =
        match mode with
        | `Fuzzy -> Buffer_pool.write_back t.pool_v
        | `Sharp ->
            let before = (Buffer_pool.stats t.pool_v).Buffer_pool.flushes in
            Buffer_pool.flush_all t.pool_v;
            (Buffer_pool.stats t.pool_v).Buffer_pool.flushes - before
      in
      let dpt = Buffer_pool.dirty_pages t.pool_v in
      let end_lsn =
        Log_manager.append log ~prev:Lsn.null ~txn:0
          (Log_record.End_checkpoint { begin_lsn; dpt; att })
      in
      Log_manager.flush log end_lsn;
      Crash_point.hit crash_point_end;
      let redo =
        List.fold_left (fun acc (_, rec_lsn) -> min acc rec_lsn) begin_lsn dpt
      in
      Log_manager.set_checkpoint log ~lsn:end_lsn ~redo;
      (* Snapshot-isolation GC floor: versions committed at or below the
         allocator watermark as of this (now published) checkpoint become
         eligible for retirement, subject to live snapshots
         (Snapshot.gc_cap). *)
      Snapshot.note_checkpoint (Txn_mgr.snapshots t.txns_v);
      (* Everything below the redo floor AND below the oldest live
         transaction's Begin can never be read again. *)
      let keep_from =
        match Txn_mgr.oldest_first_lsn t.txns_v with
        | Some oldest -> min redo oldest
        | None -> redo
      in
      let wal_before = Log_manager.stats log in
      let dropped = Log_manager.truncate log ~keep_from in
      let wal_after = Log_manager.stats log in
      t.ckpts <- t.ckpts + 1;
      t.ckpt_pages <- t.ckpt_pages + written;
      t.ckpt_records <- t.ckpt_records + dropped;
      t.ckpt_bytes <-
        t.ckpt_bytes
        + (wal_after.Log_manager.truncated_bytes
          - wal_before.Log_manager.truncated_bytes);
      t.last_ckpt_bytes <- wal_after.Log_manager.bytes;
      Crash_point.hit crash_point_truncated)

(* Log-growth trigger, run on the committing thread after each user
   commit: cheap check, and at most one checkpoint in flight (a busy
   checkpointer makes this a no-op rather than a queue). Running inline —
   not on a helper thread — means an armed ckpt.* crash point fires in the
   workload thread, where the chaos harness can catch it. *)
let maybe_checkpoint t =
  match t.cfg.ckpt_log_bytes with
  | None -> ()
  | Some threshold ->
      let bytes = (Log_manager.stats !(t.log_ref)).Log_manager.bytes in
      if bytes - t.last_ckpt_bytes >= threshold then
        if Mutex.try_lock t.ckpt_mu then begin
          Mutex.unlock t.ckpt_mu;
          (* Re-check after the race window: another thread may have just
             checkpointed. *)
          if bytes - t.last_ckpt_bytes >= threshold then
            checkpoint ~mode:`Fuzzy t
        end

let start_ckpt_thread t =
  match t.cfg.ckpt_interval_s with
  | None -> ()
  | Some period ->
      t.ckpt_stop <- false;
      t.ckpt_thread <-
        Some
          (Thread.create
             (fun () ->
               let rec sleep left =
                 if left > 0. && not t.ckpt_stop then begin
                   let d = min left 0.05 in
                   Thread.delay d;
                   sleep (left -. d)
                 end
               in
               while not t.ckpt_stop do
                 sleep period;
                 if not t.ckpt_stop then
                   (* The interval checkpointer is a background helper: a
                      crash point firing here (or the env dying under it)
                      must not take down the process — the workload
                      threads drive crash simulation. *)
                   try checkpoint ~mode:`Fuzzy t with _ -> ()
               done)
             ())

let stop_ckpt_thread t =
  match t.ckpt_thread with
  | None -> ()
  | Some th ->
      t.ckpt_stop <- true;
      Thread.join th;
      t.ckpt_thread <- None

let wire_triggers t =
  Txn_mgr.set_on_user_commit t.txns_v (fun () -> maybe_checkpoint t);
  (* Full-page writes: with log truncation, a page's durable image can be
     the only copy of its pre-checkpoint history — log the image at each
     clean→dirty transition so a torn copy stays rebuildable. *)
  Buffer_pool.set_image_logger t.pool_v
    (Some
       (fun pid page ->
         ignore
           (Log_manager.append !(t.log_ref) ~prev:Lsn.null ~txn:0
              (Log_record.Page_image
                 { page = pid; image = Bytes.to_string (Page.raw page) }))));
  (* Dirtied pages take their rec_lsn from the WAL tail (their first
     un-persisted record lands above it); without this, one update to a
     cold or freshly created page floors the checkpoint redo point — and
     truncation — below the retained log. *)
  Buffer_pool.set_lsn_source t.pool_v
    (Some (fun () -> Log_manager.last_lsn !(t.log_ref)))

let fresh_volatile t =
  t.pool_v <-
    Buffer_pool.create ~capacity:t.cfg.pool_capacity ?shards:t.cfg.pool_shards
      ?pin_attempts:t.cfg.pool_pin_attempts
      ?backoff_seed:t.cfg.pool_backoff_seed ~disk:t.disk
      ~wal_flush:(fun lsn -> Log_manager.flush !(t.log_ref) lsn)
      ();
  t.locks_v <- Lock_manager.create ();
  t.txns_v <- Txn_mgr.create ~log:!(t.log_ref) ~pool:t.pool_v ~locks:t.locks_v ();
  wire_triggers t

let make_skeleton disk log_ref cfg =
  let pool =
    Buffer_pool.create ~capacity:cfg.pool_capacity ?shards:cfg.pool_shards
      ?pin_attempts:cfg.pool_pin_attempts ?backoff_seed:cfg.pool_backoff_seed
      ~disk
      ~wal_flush:(fun lsn -> Log_manager.flush !log_ref lsn)
      ()
  in
  let locks = Lock_manager.create () in
  let txns = Txn_mgr.create ~log:!log_ref ~pool ~locks () in
  let t =
    {
      cfg;
      disk;
      log_ref;
      pool_v = pool;
      locks_v = locks;
      txns_v = txns;
      crashed = false;
      tasks = Queue.create ();
      tasks_mu = Mutex.create ();
      allocs = 0;
      deallocs = 0;
      reuses = 0;
      completions = 0;
      ckpt_mu = Mutex.create ();
      ckpts = 0;
      ckpt_pages = 0;
      ckpt_records = 0;
      ckpt_bytes = 0;
      last_ckpt_bytes = 0;
      ckpt_thread = None;
      ckpt_stop = false;
    }
  in
  wire_triggers t;
  t

let create ?disk cfg =
  let disk =
    match disk with Some d -> d | None -> Disk.in_memory ~page_size:cfg.page_size
  in
  let log_ref =
    ref
      (Log_manager.create ?path:cfg.log_path ~group_commit:cfg.wal_group_commit
         ())
  in
  let t = make_skeleton disk log_ref cfg in
  (* Format the meta page inside an atomic action. *)
  Atomic_action.run t.txns_v (fun txn ->
      let fr = Buffer_pool.pin_new t.pool_v meta_pid in
      ignore
        (Txn_mgr.update t.txns_v txn fr
           (Page_op.Format { kind = Page.Meta; level = 0 }));
      ignore
        (Txn_mgr.update t.txns_v txn fr
           (Page_op.Insert_slot { slot = 0; cell = enc_u32 (meta_pid + 1) }));
      Buffer_pool.unpin t.pool_v fr);
  checkpoint t;
  start_ckpt_thread t;
  t

let open_from ?disk cfg =
  let log_path =
    match cfg.log_path with
    | Some p -> p
    | None -> invalid_arg "Env.open_from: config.log_path is required"
  in
  let disk =
    match disk with Some d -> d | None -> Disk.in_memory ~page_size:cfg.page_size
  in
  let log_ref = ref (Log_manager.create ~path:log_path ()) in
  let t = make_skeleton disk log_ref cfg in
  t.crashed <- true;
  t

(* --- page allocation --- *)

let with_meta_x t f =
  let fr = Buffer_pool.pin t.pool_v meta_pid in
  Latch.acquire fr.Buffer_pool.latch Latch.X;
  Latch_order.acquired Latch_order.space_map_rank;
  Fun.protect
    ~finally:(fun () ->
      Latch.release fr.Buffer_pool.latch Latch.X;
      Latch_order.released Latch_order.space_map_rank;
      Buffer_pool.unpin t.pool_v fr)
    (fun () -> f fr)

let alloc_page t txn ~kind ~level =
  let mgr = t.txns_v in
  t.allocs <- t.allocs + 1;
  with_meta_x t (fun meta ->
      let head = Page.aux_ptr meta.Buffer_pool.page in
      if head <> Page.nil then begin
        (* Pop the free list. The free page's cell 0 holds the next link. *)
        let fr = Buffer_pool.pin t.pool_v head in
        let next = dec_u32 (Page.get fr.Buffer_pool.page 0) in
        ignore
          (Txn_mgr.update mgr txn meta
             (Page_op.Set_aux_ptr { old_ptr = head; new_ptr = next }));
        ignore
          (Txn_mgr.update mgr txn fr
             (Page_op.Delete_slot { slot = 0; cell = enc_u32 next }));
        ignore
          (Txn_mgr.update mgr txn fr
             (Page_op.Reformat
                { old_kind = Page.Free; new_kind = kind; old_level = 0; new_level = level }));
        t.reuses <- t.reuses + 1;
        Crash_point.hit crash_point_free_reused;
        fr
      end
      else begin
        let next_pid = dec_u32 (Page.get meta.Buffer_pool.page 0) in
        ignore
          (Txn_mgr.update mgr txn meta
             (Page_op.Replace_slot
                { slot = 0; old_cell = enc_u32 next_pid; new_cell = enc_u32 (next_pid + 1) }));
        let fr = Buffer_pool.pin_new t.pool_v next_pid in
        ignore (Txn_mgr.update mgr txn fr (Page_op.Format { kind; level }));
        fr
      end)

let dealloc_page t txn fr =
  let mgr = t.txns_v in
  t.deallocs <- t.deallocs + 1;
  let page = fr.Buffer_pool.page in
  (* Strip the node down to a bare page with invertible operations, in an
     order whose exact reverse (undo) rebuilds it. *)
  let cells = Page.fold page ~init:[] ~f:(fun acc _ c -> c :: acc) in
  if cells <> [] then
    ignore (Txn_mgr.update mgr txn fr (Page_op.Clear { cells = List.rev cells }));
  if Page.side_ptr page <> Page.nil then
    ignore
      (Txn_mgr.update mgr txn fr
         (Page_op.Set_side_ptr { old_ptr = Page.side_ptr page; new_ptr = Page.nil }));
  if Page.aux_ptr page <> Page.nil then
    ignore
      (Txn_mgr.update mgr txn fr
         (Page_op.Set_aux_ptr { old_ptr = Page.aux_ptr page; new_ptr = Page.nil }));
  if Page.flags page <> 0 then
    ignore
      (Txn_mgr.update mgr txn fr
         (Page_op.Set_flags { old_flags = Page.flags page; new_flags = 0 }));
  ignore
    (Txn_mgr.update mgr txn fr
       (Page_op.Reformat
          {
            old_kind = Page.kind page;
            new_kind = Page.Free;
            old_level = Page.level page;
            new_level = 0;
          }));
  with_meta_x t (fun meta ->
      let head = Page.aux_ptr meta.Buffer_pool.page in
      ignore
        (Txn_mgr.update mgr txn fr
           (Page_op.Insert_slot { slot = 0; cell = enc_u32 head }));
      ignore
        (Txn_mgr.update mgr txn meta
           (Page_op.Set_aux_ptr { old_ptr = head; new_ptr = Page.id page })));
  Crash_point.hit crash_point_free_pushed

(* Pages ever formatted on this disk (the next-unallocated-pid counter,
   minus pids 0 and 1 which are reserved/meta). This is the file's
   high-water extent: it only grows, so a churn workload whose extent
   plateaus is provably reusing freed pages. *)
let allocated_extent t =
  with_meta_x t (fun meta -> dec_u32 (Page.get meta.Buffer_pool.page 0) - 2)

(* Walk the free list and count it. Holds the meta X latch for the whole
   walk so the list cannot change underfoot; intended for harness/bench
   gating, not hot paths. *)
let free_list_length t =
  with_meta_x t (fun meta ->
      let rec walk pid n =
        if pid = Page.nil then n
        else begin
          let fr = Buffer_pool.pin t.pool_v pid in
          let next = dec_u32 (Page.get fr.Buffer_pool.page 0) in
          Buffer_pool.unpin t.pool_v fr;
          walk next (n + 1)
        end
      in
      walk (Page.aux_ptr meta.Buffer_pool.page) 0)

(* --- catalog --- *)

let create_tree t ~name ~kind ~level =
  Atomic_action.run t.txns_v (fun txn ->
      let root = alloc_page t txn ~kind ~level in
      let root_pid = Page.id root.Buffer_pool.page in
      Buffer_pool.unpin t.pool_v root;
      with_meta_x t (fun meta ->
          let slot = Page.slot_count meta.Buffer_pool.page in
          ignore
            (Txn_mgr.update t.txns_v txn meta
               (Page_op.Insert_slot
                  { slot; cell = enc_catalog ~name ~root:root_pid ~kind ~level })));
      root_pid)

let list_trees t =
  let fr = Buffer_pool.pin t.pool_v meta_pid in
  Latch.acquire fr.Buffer_pool.latch Latch.S;
  let out =
    Page.fold fr.Buffer_pool.page ~init:[] ~f:(fun acc i cell ->
        if i = 0 then acc else dec_catalog cell :: acc)
  in
  Latch.release fr.Buffer_pool.latch Latch.S;
  Buffer_pool.unpin t.pool_v fr;
  List.rev out

let find_tree t ~name =
  List.assoc_opt name (list_trees t)

(* --- crash / recover --- *)

let crash t =
  stop_ckpt_thread t;
  Buffer_pool.crash t.pool_v;
  t.log_ref := Log_manager.crash !(t.log_ref);
  Txn_mgr.crash t.txns_v;
  Mutex.lock t.tasks_mu;
  Queue.clear t.tasks;
  Mutex.unlock t.tasks_mu;
  t.crashed <- true

let recover t =
  if not t.crashed then invalid_arg "Env.recover: not crashed";
  fresh_volatile t;
  (* Transaction ids must not collide with ids already in the log — and the
     transaction manager must be usable BEFORE recovery runs, because
     logical undo may execute compensations through the access method,
     which can start fresh atomic actions (e.g. a split so a restored
     record fits). *)
  t.txns_v <-
    Txn_mgr.create
      ~first_id:(Log_manager.max_txn_id !(t.log_ref) + 1)
      ~log:!(t.log_ref) ~pool:t.pool_v ~locks:t.locks_v ();
  wire_triggers t;
  t.crashed <- false;
  let report = Recovery.run ~log:!(t.log_ref) ~pool:t.pool_v in
  (* Seed the reborn commit-ts allocator past every pre-crash timestamp
     the log knows about; trees raise it further from their recovered
     clocks when re-attached. Pre-crash snapshots hold the old allocator
     and abort with Stale_snapshot on next use. *)
  Snapshot.observe_floor (Txn_mgr.snapshots t.txns_v) report.Recovery.max_commit_ts;
  (* The reopened log's [bytes] counter restarts at zero; rebase the
     log-growth watermark on it or the trigger compares fresh appends
     against the pre-crash high-water mark and stalls checkpointing
     (and truncation) until the new log outgrows the old one. *)
  t.last_ckpt_bytes <- (Log_manager.stats !(t.log_ref)).Log_manager.bytes;
  start_ckpt_thread t;
  report

let close t =
  stop_ckpt_thread t;
  checkpoint t;
  t.disk.Disk.close ()

(* --- completion queue --- *)

let schedule t task =
  Mutex.lock t.tasks_mu;
  Queue.add task t.tasks;
  Mutex.unlock t.tasks_mu

let drain t =
  let ran = ref 0 in
  let rec loop () =
    Mutex.lock t.tasks_mu;
    let task = if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks) in
    Mutex.unlock t.tasks_mu;
    match task with
    | None -> ()
    | Some task ->
        task ();
        incr ran;
        t.completions <- t.completions + 1;
        loop ()
  in
  loop ();
  !ran

let pending t =
  Mutex.lock t.tasks_mu;
  let n = Queue.length t.tasks in
  Mutex.unlock t.tasks_mu;
  n

let stats t =
  {
    pages_allocated = t.allocs;
    pages_freed = t.deallocs;
    pages_reused = t.reuses;
    completions_run = t.completions;
    checkpoints = t.ckpts;
    ckpt_pages_written = t.ckpt_pages;
    ckpt_records_truncated = t.ckpt_records;
    ckpt_bytes_truncated = t.ckpt_bytes;
  }
