module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch
module Latch_order = Pitree_sync.Latch_order
module Lsn = Pitree_wal.Lsn
module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Page_op = Pitree_wal.Page_op
module Recovery = Pitree_wal.Recovery
module Lock_manager = Pitree_lock.Lock_manager
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Codec = Pitree_util.Codec

type config = {
  page_size : int;
  pool_capacity : int;
  page_oriented_undo : bool;
  consolidation : bool;
}

let default_config =
  { page_size = 4096; pool_capacity = 4096; page_oriented_undo = false; consolidation = true }

type stats = {
  pages_allocated : int;
  pages_deallocated : int;
  completions_run : int;
}

type t = {
  cfg : config;
  pool_shards : int option;  (* None: Buffer_pool picks (domain count) *)
  disk : Disk.t;
  log_ref : Log_manager.t ref;
  mutable pool_v : Buffer_pool.t;
  mutable locks_v : Lock_manager.t;
  mutable txns_v : Txn_mgr.t;
  mutable crashed : bool;
  tasks : (unit -> unit) Queue.t;
  tasks_mu : Mutex.t;
  mutable allocs : int;
  mutable deallocs : int;
  mutable completions : int;
}

let meta_pid = 1

let config t = t.cfg
let pool t = t.pool_v
let log t = !(t.log_ref)
let locks t = t.locks_v
let txns t = t.txns_v

let enc_u32 v =
  let b = Buffer.create 4 in
  Codec.put_u32 b v;
  Buffer.contents b

let dec_u32 s = Codec.get_u32 (Codec.reader s)

(* Catalog cell: name, root pid, kind, level. Cell 0 of the meta page is the
   next-unallocated-pid counter; catalog entries occupy cells 1..n. *)
let enc_catalog ~name ~root ~kind ~level =
  let b = Buffer.create 32 in
  Codec.put_bytes b name;
  Codec.put_u32 b root;
  Codec.put_u8 b (Page.kind_to_int kind);
  Codec.put_u8 b level;
  Buffer.contents b

let dec_catalog s =
  let r = Codec.reader s in
  let name = Codec.get_bytes r in
  let root = Codec.get_u32 r in
  (name, root)

let fresh_volatile t =
  t.pool_v <-
    Buffer_pool.create ~capacity:t.cfg.pool_capacity ?shards:t.pool_shards
      ~disk:t.disk
      ~wal_flush:(fun lsn -> Log_manager.flush !(t.log_ref) lsn)
      ();
  t.locks_v <- Lock_manager.create ();
  t.txns_v <- Txn_mgr.create ~log:!(t.log_ref) ~pool:t.pool_v ~locks:t.locks_v ()

let checkpoint t =
  Buffer_pool.flush_all t.pool_v;
  let log = !(t.log_ref) in
  let lsn =
    Log_manager.append log ~prev:Lsn.null ~txn:0
      (Log_record.Checkpoint { active = Txn_mgr.active t.txns_v })
  in
  Log_manager.flush log lsn;
  Log_manager.set_redo_start log lsn;
  (* Bound log memory: everything before the redo point AND before the
     oldest live transaction's Begin can never be read again. *)
  let keep_from =
    match Txn_mgr.oldest_first_lsn t.txns_v with
    | Some oldest -> min lsn oldest
    | None -> lsn
  in
  ignore (Log_manager.truncate log ~keep_from)

let make_skeleton ?pool_shards disk log_ref cfg =
  let pool =
    Buffer_pool.create ~capacity:cfg.pool_capacity ?shards:pool_shards ~disk
      ~wal_flush:(fun lsn -> Log_manager.flush !log_ref lsn)
      ()
  in
  let locks = Lock_manager.create () in
  let txns = Txn_mgr.create ~log:!log_ref ~pool ~locks () in
  {
    cfg;
    pool_shards;
    disk;
    log_ref;
    pool_v = pool;
    locks_v = locks;
    txns_v = txns;
    crashed = false;
    tasks = Queue.create ();
    tasks_mu = Mutex.create ();
    allocs = 0;
    deallocs = 0;
    completions = 0;
  }

let create ?disk ?log_path ?wal_group_commit ?pool_shards cfg =
  let disk =
    match disk with Some d -> d | None -> Disk.in_memory ~page_size:cfg.page_size
  in
  let log_ref =
    ref (Log_manager.create ?path:log_path ?group_commit:wal_group_commit ())
  in
  let t = make_skeleton ?pool_shards disk log_ref cfg in
  (* Format the meta page inside an atomic action. *)
  Atomic_action.run t.txns_v (fun txn ->
      let fr = Buffer_pool.pin_new t.pool_v meta_pid in
      ignore
        (Txn_mgr.update t.txns_v txn fr
           (Page_op.Format { kind = Page.Meta; level = 0 }));
      ignore
        (Txn_mgr.update t.txns_v txn fr
           (Page_op.Insert_slot { slot = 0; cell = enc_u32 (meta_pid + 1) }));
      Buffer_pool.unpin t.pool_v fr);
  checkpoint t;
  t

let open_from ?disk ?pool_shards ~log_path cfg =
  let disk =
    match disk with Some d -> d | None -> Disk.in_memory ~page_size:cfg.page_size
  in
  let log_ref = ref (Log_manager.create ~path:log_path ()) in
  let t = make_skeleton ?pool_shards disk log_ref cfg in
  t.crashed <- true;
  t

(* --- page allocation --- *)

let with_meta_x t f =
  let fr = Buffer_pool.pin t.pool_v meta_pid in
  Latch.acquire fr.Buffer_pool.latch Latch.X;
  Latch_order.acquired Latch_order.space_map_rank;
  Fun.protect
    ~finally:(fun () ->
      Latch.release fr.Buffer_pool.latch Latch.X;
      Latch_order.released Latch_order.space_map_rank;
      Buffer_pool.unpin t.pool_v fr)
    (fun () -> f fr)

let alloc_page t txn ~kind ~level =
  let mgr = t.txns_v in
  t.allocs <- t.allocs + 1;
  with_meta_x t (fun meta ->
      let head = Page.aux_ptr meta.Buffer_pool.page in
      if head <> Page.nil then begin
        (* Pop the free list. The free page's cell 0 holds the next link. *)
        let fr = Buffer_pool.pin t.pool_v head in
        let next = dec_u32 (Page.get fr.Buffer_pool.page 0) in
        ignore
          (Txn_mgr.update mgr txn meta
             (Page_op.Set_aux_ptr { old_ptr = head; new_ptr = next }));
        ignore
          (Txn_mgr.update mgr txn fr
             (Page_op.Delete_slot { slot = 0; cell = enc_u32 next }));
        ignore
          (Txn_mgr.update mgr txn fr
             (Page_op.Reformat
                { old_kind = Page.Free; new_kind = kind; old_level = 0; new_level = level }));
        fr
      end
      else begin
        let next_pid = dec_u32 (Page.get meta.Buffer_pool.page 0) in
        ignore
          (Txn_mgr.update mgr txn meta
             (Page_op.Replace_slot
                { slot = 0; old_cell = enc_u32 next_pid; new_cell = enc_u32 (next_pid + 1) }));
        let fr = Buffer_pool.pin_new t.pool_v next_pid in
        ignore (Txn_mgr.update mgr txn fr (Page_op.Format { kind; level }));
        fr
      end)

let dealloc_page t txn fr =
  let mgr = t.txns_v in
  t.deallocs <- t.deallocs + 1;
  let page = fr.Buffer_pool.page in
  (* Strip the node down to a bare page with invertible operations, in an
     order whose exact reverse (undo) rebuilds it. *)
  let cells = Page.fold page ~init:[] ~f:(fun acc _ c -> c :: acc) in
  if cells <> [] then
    ignore (Txn_mgr.update mgr txn fr (Page_op.Clear { cells = List.rev cells }));
  if Page.side_ptr page <> Page.nil then
    ignore
      (Txn_mgr.update mgr txn fr
         (Page_op.Set_side_ptr { old_ptr = Page.side_ptr page; new_ptr = Page.nil }));
  if Page.aux_ptr page <> Page.nil then
    ignore
      (Txn_mgr.update mgr txn fr
         (Page_op.Set_aux_ptr { old_ptr = Page.aux_ptr page; new_ptr = Page.nil }));
  if Page.flags page <> 0 then
    ignore
      (Txn_mgr.update mgr txn fr
         (Page_op.Set_flags { old_flags = Page.flags page; new_flags = 0 }));
  ignore
    (Txn_mgr.update mgr txn fr
       (Page_op.Reformat
          {
            old_kind = Page.kind page;
            new_kind = Page.Free;
            old_level = Page.level page;
            new_level = 0;
          }));
  with_meta_x t (fun meta ->
      let head = Page.aux_ptr meta.Buffer_pool.page in
      ignore
        (Txn_mgr.update mgr txn fr
           (Page_op.Insert_slot { slot = 0; cell = enc_u32 head }));
      ignore
        (Txn_mgr.update mgr txn meta
           (Page_op.Set_aux_ptr { old_ptr = head; new_ptr = Page.id page })))

(* --- catalog --- *)

let create_tree t ~name ~kind ~level =
  Atomic_action.run t.txns_v (fun txn ->
      let root = alloc_page t txn ~kind ~level in
      let root_pid = Page.id root.Buffer_pool.page in
      Buffer_pool.unpin t.pool_v root;
      with_meta_x t (fun meta ->
          let slot = Page.slot_count meta.Buffer_pool.page in
          ignore
            (Txn_mgr.update t.txns_v txn meta
               (Page_op.Insert_slot
                  { slot; cell = enc_catalog ~name ~root:root_pid ~kind ~level })));
      root_pid)

let list_trees t =
  let fr = Buffer_pool.pin t.pool_v meta_pid in
  Latch.acquire fr.Buffer_pool.latch Latch.S;
  let out =
    Page.fold fr.Buffer_pool.page ~init:[] ~f:(fun acc i cell ->
        if i = 0 then acc else dec_catalog cell :: acc)
  in
  Latch.release fr.Buffer_pool.latch Latch.S;
  Buffer_pool.unpin t.pool_v fr;
  List.rev out

let find_tree t ~name =
  List.assoc_opt name (list_trees t)

(* --- crash / recover --- *)

let crash t =
  Buffer_pool.crash t.pool_v;
  t.log_ref := Log_manager.crash !(t.log_ref);
  Txn_mgr.crash t.txns_v;
  Mutex.lock t.tasks_mu;
  Queue.clear t.tasks;
  Mutex.unlock t.tasks_mu;
  t.crashed <- true

let recover t =
  if not t.crashed then invalid_arg "Env.recover: not crashed";
  fresh_volatile t;
  (* Transaction ids must not collide with ids already in the log — and the
     transaction manager must be usable BEFORE recovery runs, because
     logical undo may execute compensations through the access method,
     which can start fresh atomic actions (e.g. a split so a restored
     record fits). *)
  t.txns_v <-
    Txn_mgr.create
      ~first_id:(Log_manager.max_txn_id !(t.log_ref) + 1)
      ~log:!(t.log_ref) ~pool:t.pool_v ~locks:t.locks_v ();
  t.crashed <- false;
  Recovery.run ~log:!(t.log_ref) ~pool:t.pool_v

let close t =
  checkpoint t;
  t.disk.Disk.close ()

(* --- completion queue --- *)

let schedule t task =
  Mutex.lock t.tasks_mu;
  Queue.add task t.tasks;
  Mutex.unlock t.tasks_mu

let drain t =
  let ran = ref 0 in
  let rec loop () =
    Mutex.lock t.tasks_mu;
    let task = if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks) in
    Mutex.unlock t.tasks_mu;
    match task with
    | None -> ()
    | Some task ->
        task ();
        incr ran;
        t.completions <- t.completions + 1;
        loop ()
  in
  loop ();
  !ran

let pending t =
  Mutex.lock t.tasks_mu;
  let n = Queue.length t.tasks in
  Mutex.unlock t.tasks_mu;
  n

let stats t =
  {
    pages_allocated = t.allocs;
    pages_deallocated = t.deallocs;
    completions_run = t.completions;
  }
