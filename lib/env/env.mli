(** The database environment: disk, buffer pool, log, lock manager,
    transaction manager, page allocator, catalog and the completion queue,
    with a crash/recover lifecycle.

    One [Env.t] hosts any number of index trees (B-link, TSB, hB, baselines)
    sharing the same substrate — as in the paper, where the access method
    sits inside a full DBMS.

    {2 Crash model}

    [crash] models a power failure: the buffer pool, lock table, live
    transactions and pending completion tasks vanish; the durable state is
    exactly the flushed pages plus the flushed log prefix. [recover] then
    runs restart recovery (analysis/redo/undo). Structure changes interrupted
    between atomic actions are NOT completed by recovery — they are completed
    lazily when later traversals stumble on them (paper section 5.1), which
    is the behaviour experiment E5 measures. *)

type config = {
  page_size : int;
  pool_capacity : int;
  page_oriented_undo : bool;
      (** when true, leaf-node record moves require move locks and may need
          to run inside the updating transaction (section 4.2) *)
  consolidation : bool;
      (** CP invariant (consolidation possible) vs CNS (section 5.2) *)
  log_path : string option;
      (** back the write-ahead log with an append-only file, making the
          database recoverable across process restarts (pair it with
          [Pitree_storage.Disk.file]); [None] keeps the log in memory *)
  wal_group_commit : bool;
      (** batched log-force pipeline (default [true]); [false] keeps the
          serial one-fsync-per-commit path as a measurable baseline *)
  pool_shards : int option;
      (** buffer-pool shard count override ([Some 1] = legacy single-mutex
          pool; [None]: domain count, see [Buffer_pool.create]); survives
          crash/recover cycles *)
  pool_pin_attempts : int option;
      (** bound on the pool's full-shard retry ladder before
          [Pool_exhausted] ([None]: Buffer_pool's default, 20); survives
          crash/recover cycles *)
  pool_backoff_seed : int option;
      (** seed for the pool's backoff jitter ([None]: 0) — pin retries and
          disk-op retries scale each wait by a seeded factor in [0.5, 1.5)
          so fault-plan storms degrade without stampeding *)
  ckpt_log_bytes : int option;
      (** take a fuzzy checkpoint (on the committing thread) whenever the
          log has grown by this many bytes since the last one *)
  ckpt_interval_s : float option;
      (** run a background thread taking a fuzzy checkpoint every this many
          seconds *)
  olc_reads : bool;
      (** searches and range scans descend latch-free, validating against
          per-node version words (optimistic latch coupling) and falling
          back to the S-latched path after bounded retries; [false]
          restores the always-latched read path (baselines, bisection) *)
  combine : bool;
      (** non-transactional puts funnel through the hot-key combining layer
          ([Pitree_combine.Combine]): concurrent writers to the same
          publication slot are batched by an elected leader into one
          descent, one X latch and one log batch with a single durability
          enrollment; [false] restores one descent per write (baselines,
          [--no-combine]) *)
  combine_slots : int;
      (** publication slots per engine, rounded up to a power of two *)
  combine_window_us : int;
      (** how long a hot slot's leader holds the election open so a write
          storm can pile into its batch; [0] (default) applies immediately;
          ignored under the deterministic scheduler *)
  si_txns : bool;
      (** snapshot-isolation MVCC ({!Pitree_txn.Mvcc}): TSB version
          timestamps come from the transaction manager's commit-ts
          allocator instead of per-tree clocks — making
          [Mvcc.begin_snapshot] reads consistent cuts — and the TSB gc
          horizon is clamped to
          [min (oldest live snapshot - 1) (checkpoint watermark)];
          [false] (default) keeps per-tree clocks and unclamped gc *)
}

val default_config : config
(** 4 KiB pages, 4096-frame pool, CP invariant, in-memory log with group
    commit, automatic shard count, no automatic checkpoints. Override with
    record update syntax: [{ default_config with log_path = Some p }]. *)

type t

val create : ?disk:Pitree_storage.Disk.t -> config -> t
(** Fresh database: formats the meta page, takes an initial checkpoint and
    starts the interval checkpointer if [cfg.ckpt_interval_s] is set.
    [disk] defaults to a new crash-faithful in-memory disk; everything
    else — log file, group commit, pool shards, checkpoint triggers — comes
    from the config record. *)

val open_from : ?disk:Pitree_storage.Disk.t -> config -> t
(** Reattach to a database persisted by a previous process: the log is
    reloaded from [cfg.log_path] (required — raises [Invalid_argument] if
    [None]) and the environment starts in the crashed state — call
    {!recover} (which replays the log against [disk]) before use. *)

val config : t -> config
val pool : t -> Pitree_storage.Buffer_pool.t
val log : t -> Pitree_wal.Log_manager.t
val locks : t -> Pitree_lock.Lock_manager.t
val txns : t -> Pitree_txn.Txn_mgr.t

val crash : t -> unit
(** Simulated power failure (see module doc). The environment is unusable
    until {!recover}. *)

val recover : t -> Pitree_wal.Recovery.report
(** Restart: rebuild volatile state, run recovery (analysis starts from the
    last complete checkpoint, so the report's [analyzed]/[redone] are
    bounded by the work since it, not by total history) and restart the
    automatic checkpoint triggers. *)

val checkpoint : ?mode:[ `Sharp | `Fuzzy ] -> t -> unit
(** Take a checkpoint and truncate the log below the new redo point.

    Both modes follow the ARIES fuzzy protocol — log a [Begin_checkpoint]
    fence with an exact snapshot of the active-transaction table, write
    dirty pages back, log an [End_checkpoint] carrying the dirty-page
    table (page id, rec_lsn) and the snapshot, force it, publish the
    master record, truncate. They differ in how pages are written back:
    [`Fuzzy] (the mode the automatic triggers use, and the only mode safe
    under concurrent writers) flushes one page at a time under that page's
    S latch, so an in-flux page is never captured and readers stall at
    most one page write; [`Sharp] (default, used by {!close}) calls
    [Buffer_pool.flush_all], which holds each shard's mutex across its
    flushes and takes no page latches — it leaves the pool fully clean but
    must not race page mutators (concurrent readers are fine; {!close} and
    freshly-created environments are quiescent).

    Crash points [ckpt.begin.logged], [ckpt.end.logged] and
    [ckpt.truncated] fire at the protocol's three commit instants. *)

val close : t -> unit
(** Clean shutdown: stop the checkpointer thread, checkpoint and release
    the disk. *)

(** {2 Page allocation}

    Allocation updates the meta page (our space-management information) and
    is fully logged inside the caller's transaction, so an aborted action
    releases its pages. Per section 4.1.1, space-management information is
    latched {e last}: call these while holding whatever node latches the
    structure change needs, never acquire node latches afterwards. *)

val alloc_page :
  t -> Pitree_txn.Txn.t -> kind:Pitree_storage.Page.kind -> level:int ->
  Pitree_storage.Buffer_pool.frame
(** Returns the new page's frame, pinned and already formatted (logged).
    No other thread can reach the page until the caller links it into a
    tree, so it needs no latch yet. Caller unpins. *)

val dealloc_page : t -> Pitree_txn.Txn.t -> Pitree_storage.Buffer_pool.frame -> unit
(** Reformat the page as free (a logged node update — its state identifier
    changes, per section 5.2.2 strategy (b)) and push it on the free list.
    Caller holds the frame's X latch and has already removed every pointer
    to the page.

    The free list is threaded through the Meta page: meta [aux_ptr] is the
    head, each free page's cell 0 the next link. {!alloc_page} pops it
    before extending the file, so deletion/merge gives pages back for real.
    Crash points [free.reused] (alloc pop) and [free.pushed] (dealloc push)
    fire at the two free-list instants. *)

val allocated_extent : t -> int
(** Pages ever formatted on this disk, excluding the reserved and meta
    pages — the file's high-water extent. Monotone: reuse from the free
    list does not grow it. *)

val free_list_length : t -> int
(** Length of the free list (walked under the meta latch; for harnesses
    and benches, not hot paths). *)

(** {2 Catalog} *)

val create_tree :
  t -> name:string -> kind:Pitree_storage.Page.kind -> level:int -> int
(** Allocate an (immovable) root page and register [name]. Returns the root
    page id, which doubles as the tree id. The root is never moved or
    de-allocated (section 5.2.2), so this id is stable for the database's
    lifetime. *)

val find_tree : t -> name:string -> int option
val list_trees : t -> (string * int) list

(** {2 Completion queue}

    Pending structure-change completions (index-term postings, node
    consolidations) discovered during normal processing. Volatile by design:
    a crash empties it, and the work is re-discovered by later traversals. *)

val schedule : t -> (unit -> unit) -> unit

val drain : t -> int
(** Run pending completion tasks until the queue is empty; returns how many
    ran. Tasks run outside any latch. A task raising
    [Crash_point.Crash_requested] propagates (the rest stay queued, then are
    lost to the crash, as intended). *)

val pending : t -> int

(** {2 Statistics} *)

type stats = {
  pages_allocated : int;
  pages_freed : int;  (** pages deallocated onto the free list *)
  pages_reused : int;  (** allocations served by popping the free list *)
  completions_run : int;
  checkpoints : int;  (** completed checkpoints, any mode or trigger *)
  ckpt_pages_written : int;  (** dirty pages written back by checkpoints *)
  ckpt_records_truncated : int;  (** log records discarded by truncation *)
  ckpt_bytes_truncated : int;  (** log bytes discarded by truncation *)
}

val stats : t -> stats
