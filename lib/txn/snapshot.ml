(* Commit-timestamp allocator and snapshot watermarks.

   One instance lives in each Txn_mgr. Every version timestamp the TSB
   engine stamps while [Env.config.si_txns] is on comes from [allocate],
   and is retired (via [Txn.tracked_ts]) when its transaction commits or
   aborts. The watermark [completed] is the largest timestamp T such that
   every allocated timestamp <= T has been retired: a snapshot pinned at
   [completed] can never observe a half-applied transaction, because an
   SI transaction stamps its whole write set with one timestamp and that
   timestamp stays in-flight until after the commit record is logged.

   The allocator is volatile. Recovery builds a fresh one and seeds it
   with [observe_floor] from the largest [Commit_ts] record seen during
   analysis (plus each tree's recovered clock), so post-crash timestamps
   never collide with pre-crash versions. In-flight snapshots from
   before the crash hold a reference to the old allocator instance and
   are detected by physical identity (see Mvcc). *)

type t = {
  mu : Mutex.t;
  mutable next : int;  (* next timestamp to hand out *)
  inflight : (int, unit) Hashtbl.t;  (* allocated, not yet retired *)
  mutable completed : int;  (* every ts <= completed is retired *)
  live : (int, int) Hashtbl.t;  (* pinned read_ts -> snapshot refcount *)
  mutable ckpt_floor : int;  (* watermark at the last completed checkpoint *)
  mutable allocated : int;  (* stats: timestamps handed out *)
  mutable pinned : int;  (* stats: snapshots begun *)
  commit_mu : Mutex.t;  (* serializes SI committers (held by Mvcc) *)
  commit_busy : bool Atomic.t;  (* mirror of commit_mu for sim waits *)
}

let create ?(floor = 0) () =
  {
    mu = Mutex.create ();
    next = floor + 1;
    inflight = Hashtbl.create 64;
    completed = floor;
    live = Hashtbl.create 16;
    ckpt_floor = 0;
    allocated = 0;
    pinned = 0;
    commit_mu = Mutex.create ();
    commit_busy = Atomic.make false;
  }

let commit_mu t = t.commit_mu
let commit_busy t = t.commit_busy

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let allocate t =
  with_mu t (fun () ->
      let ts = t.next in
      t.next <- ts + 1;
      Hashtbl.replace t.inflight ts ();
      t.allocated <- t.allocated + 1;
      ts)

(* Advance the watermark over the contiguous retired prefix. *)
let advance t =
  while t.completed + 1 < t.next && not (Hashtbl.mem t.inflight (t.completed + 1)) do
    t.completed <- t.completed + 1
  done

let retire_all t ts_list =
  if ts_list <> [] then
    with_mu t (fun () ->
        List.iter (Hashtbl.remove t.inflight) ts_list;
        advance t)

let completed t = with_mu t (fun () -> t.completed)

let begin_snapshot t =
  with_mu t (fun () ->
      let ts = t.completed in
      let n = try Hashtbl.find t.live ts with Not_found -> 0 in
      Hashtbl.replace t.live ts (n + 1);
      t.pinned <- t.pinned + 1;
      ts)

let release_snapshot t ts =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.live ts with
      | Some n when n > 1 -> Hashtbl.replace t.live ts (n - 1)
      | Some _ -> Hashtbl.remove t.live ts
      | None -> ())

let oldest_live t =
  with_mu t (fun () ->
      Hashtbl.fold
        (fun ts _ acc ->
          match acc with Some m when m <= ts -> acc | _ -> Some ts)
        t.live None)

let live_snapshots t =
  with_mu t (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) t.live 0)

let observe_floor t ts =
  with_mu t (fun () ->
      if ts >= t.next then t.next <- ts + 1;
      if ts > t.completed then begin
        let none_below =
          Hashtbl.fold (fun id () ok -> ok && id > ts) t.inflight true
        in
        if none_below then t.completed <- ts
      end;
      advance t)

let note_checkpoint t = with_mu t (fun () -> t.ckpt_floor <- t.completed)
let checkpoint_floor t = with_mu t (fun () -> t.ckpt_floor)

(* Largest version time that garbage collection may retire: nothing a
   live snapshot can still read, and nothing newer than the watermark of
   the last completed checkpoint ("min(oldest live snapshot, checkpoint
   redo point)" — versions younger than the checkpoint may still be
   walked by recovery's logical undo after a crash). *)
let gc_cap t =
  with_mu t (fun () ->
      let snap_cap =
        Hashtbl.fold
          (fun ts _ acc -> if ts - 1 < acc then ts - 1 else acc)
          t.live max_int
      in
      min snap_cap t.ckpt_floor)

type stats = { allocated : int; retired_watermark : int; live : int; pinned : int }

let stats t =
  with_mu t (fun () ->
      {
        allocated = t.allocated;
        retired_watermark = t.completed;
        live = Hashtbl.fold (fun _ n acc -> acc + n) t.live 0;
        pinned = t.pinned;
      })
