module Lsn = Pitree_wal.Lsn
module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Page_op = Pitree_wal.Page_op
module Recovery = Pitree_wal.Recovery
module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Lock_manager = Pitree_lock.Lock_manager

type t = {
  log : Log_manager.t;
  pool : Buffer_pool.t;
  locks : Lock_manager.t;
  mu : Mutex.t;
  mutable next_id : int;
  live : (int, Txn.t) Hashtbl.t;
}

let create ?(first_id = 1) ~log ~pool ~locks () =
  { log; pool; locks; mu = Mutex.create (); next_id = first_id; live = Hashtbl.create 64 }

let log t = t.log
let pool t = t.pool
let locks t = t.locks
let wal_stats t = Log_manager.stats t.log

let begin_txn t kind =
  Mutex.lock t.mu;
  let id = t.next_id in
  t.next_id <- id + 1;
  Mutex.unlock t.mu;
  let lkind = match kind with Txn.User -> Log_record.User | Txn.System -> Log_record.System in
  let lsn = Log_manager.append t.log ~prev:Lsn.null ~txn:id (Log_record.Begin { kind = lkind }) in
  let txn =
    {
      Txn.id;
      kind;
      first_lsn = lsn;
      last_lsn = lsn;
      state = Txn.Active;
      updated_nodes = [];
      on_commit = [];
    }
  in
  Mutex.lock t.mu;
  Hashtbl.replace t.live id txn;
  Mutex.unlock t.mu;
  txn

let update ?lundo t txn fr op =
  assert (Txn.is_active txn);
  let pid = Page.id fr.Buffer_pool.page in
  (* Apply before logging: a failing operation (e.g. Page_full from an
     engine bug) must leave neither the page nor the log touched, or
     rollback would try to undo an op that never happened. This does not
     violate WAL: the caller holds the page pinned and X-latched, so the
     page cannot reach disk between the in-buffer change and the append
     below. *)
  Page_op.redo fr.Buffer_pool.page op;
  let lsn =
    Log_manager.append t.log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id
      (Log_record.Update { page = pid; op; lundo })
  in
  txn.Txn.last_lsn <- lsn;
  Page.set_lsn fr.Buffer_pool.page lsn;
  Buffer_pool.mark_dirty fr;
  lsn

let finish t txn =
  Mutex.lock t.mu;
  Hashtbl.remove t.live txn.Txn.id;
  Mutex.unlock t.mu;
  Lock_manager.release_all t.locks ~owner:txn.Txn.id

let commit t txn =
  assert (Txn.is_active txn);
  let commit_lsn =
    Log_manager.append t.log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id Log_record.Commit
  in
  (* Relative durability (section 4.3.1): an atomic action's commit record
     is NOT forced; it becomes durable with the next user-transaction commit
     that shares the log. *)
  (match txn.Txn.kind with
  | Txn.User -> Log_manager.flush t.log commit_lsn
  | Txn.System -> ());
  let end_lsn =
    Log_manager.append t.log ~prev:commit_lsn ~txn:txn.Txn.id Log_record.End
  in
  txn.Txn.last_lsn <- end_lsn;
  txn.Txn.state <- Txn.Committed;
  finish t txn;
  (* Deferred work that was contingent on commit (e.g. scheduling the
     posting of an index term for an in-transaction leaf split). *)
  List.iter (fun f -> f ()) (List.rev txn.Txn.on_commit);
  txn.Txn.on_commit <- []

let abort t txn =
  assert (Txn.is_active txn);
  let abort_lsn =
    Log_manager.append t.log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id Log_record.Abort
  in
  let last_clr =
    Recovery.rollback ~prev:abort_lsn ~log:t.log ~pool:t.pool ~txn:txn.Txn.id
      ~from_lsn:txn.Txn.last_lsn ()
  in
  let end_prev = if Lsn.is_null last_clr then abort_lsn else last_clr in
  let end_lsn = Log_manager.append t.log ~prev:end_prev ~txn:txn.Txn.id Log_record.End in
  txn.Txn.last_lsn <- end_lsn;
  txn.Txn.state <- Txn.Aborted;
  finish t txn

let active t =
  Mutex.lock t.mu;
  let l =
    Hashtbl.fold (fun id txn acc -> (id, txn.Txn.last_lsn) :: acc) t.live []
  in
  Mutex.unlock t.mu;
  l

let oldest_first_lsn t =
  Mutex.lock t.mu;
  let v =
    Hashtbl.fold
      (fun _ txn acc -> min acc txn.Txn.first_lsn)
      t.live max_int
  in
  Mutex.unlock t.mu;
  if v = max_int then None else Some v

let active_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.mu;
  n

let crash t =
  Mutex.lock t.mu;
  Hashtbl.reset t.live;
  Mutex.unlock t.mu
