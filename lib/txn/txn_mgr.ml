module Lsn = Pitree_wal.Lsn
module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Page_op = Pitree_wal.Page_op
module Recovery = Pitree_wal.Recovery
module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Lock_manager = Pitree_lock.Lock_manager

(* Concurrency discipline for fuzzy checkpoints: every transaction
   lifecycle append (Begin, Update, Commit, Abort, End) and the matching
   [last_lsn]/live-table/state update happen inside one [t.mu] critical
   section, and [begin_checkpoint] appends its Begin_checkpoint fence and
   snapshots the active-transaction table in one such section too. Mutex
   order therefore matches LSN order for these records, so the snapshot is
   exactly the transaction state as of the fence's LSN — no Commit or
   Update below the fence can be missing from it. CLRs written during a
   live abort are the one exception (they are appended by the rollback
   walk, outside [t.mu], without touching [last_lsn]); [begin_checkpoint]
   simply waits until no abort is in flight ([undoing] = 0), which keeps
   the snapshot exact without threading an append hook through every
   logical-undo handler. *)

type t = {
  log : Log_manager.t;
  pool : Buffer_pool.t;
  locks : Lock_manager.t;
  mu : Mutex.t;
  undo_done : Condition.t;  (* signalled when [undoing] drops to zero *)
  mutable next_id : int;
  live : (int, Txn.t) Hashtbl.t;
  mutable undoing : int;  (* live aborts currently writing CLRs *)
  mutable on_user_commit : (unit -> unit) option;
  snap : Snapshot.t;  (* commit-timestamp allocator (si_txns) *)
}

let create ?(first_id = 1) ?(ts_floor = 0) ~log ~pool ~locks () =
  {
    log;
    pool;
    locks;
    mu = Mutex.create ();
    undo_done = Condition.create ();
    next_id = first_id;
    live = Hashtbl.create 64;
    undoing = 0;
    on_user_commit = None;
    snap = Snapshot.create ~floor:ts_floor ();
  }

let log t = t.log
let pool t = t.pool
let locks t = t.locks
let snapshots t = t.snap
let wal_stats t = Log_manager.stats t.log

let set_on_user_commit t f = t.on_user_commit <- Some f

let begin_txn t kind =
  let lkind = match kind with Txn.User -> Log_record.User | Txn.System -> Log_record.System in
  Mutex.lock t.mu;
  let id = t.next_id in
  t.next_id <- id + 1;
  let lsn = Log_manager.append t.log ~prev:Lsn.null ~txn:id (Log_record.Begin { kind = lkind }) in
  let txn =
    {
      Txn.id;
      kind;
      first_lsn = lsn;
      last_lsn = lsn;
      state = Txn.Active;
      updated_nodes = [];
      on_commit = [];
      tracked_ts = [];
      si = None;
    }
  in
  Hashtbl.replace t.live id txn;
  Mutex.unlock t.mu;
  txn

let update ?lundo t txn fr op =
  assert (Txn.is_active txn);
  let pid = Page.id fr.Buffer_pool.page in
  (* Dirty first: the clean→dirty transition must capture the page's
     pre-update state — both rec_lsn and (when full-page writes are wired)
     the logged page image, which must precede in the log every record it
     covers. Then apply before logging the update record: a failing
     operation (e.g. Page_full from an engine bug) must leave the update
     unlogged, or rollback would try to undo an op that never happened
     (the page ends merely marked dirty-but-unchanged, which is harmless).
     This does not violate WAL: the caller holds the page pinned and
     X-latched, so the page cannot reach disk between the in-buffer change
     and the append below. *)
  Buffer_pool.mark_dirty fr;
  Page_op.redo fr.Buffer_pool.page op;
  Mutex.lock t.mu;
  let lsn =
    Log_manager.append t.log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id
      (Log_record.Update { page = pid; op; lundo })
  in
  txn.Txn.last_lsn <- lsn;
  Mutex.unlock t.mu;
  Page.set_lsn fr.Buffer_pool.page lsn;
  lsn

let commit ?(commits = 1) t txn =
  assert (Txn.is_active txn);
  Mutex.lock t.mu;
  let commit_lsn =
    Log_manager.append t.log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id Log_record.Commit
  in
  txn.Txn.last_lsn <- commit_lsn;
  (* Committed the moment the record exists: a checkpoint snapshot taken
     from here on reports the transaction as committed, and log-prefix
     durability guarantees the Commit record is durable whenever that
     snapshot's End_checkpoint is. *)
  txn.Txn.state <- Txn.Committed;
  Mutex.unlock t.mu;
  (* Relative durability (section 4.3.1): an atomic action's commit record
     is NOT forced; it becomes durable with the next user-transaction commit
     that shares the log. *)
  (match txn.Txn.kind with
  | Txn.User -> Log_manager.flush ~commits t.log commit_lsn
  | Txn.System -> ());
  Mutex.lock t.mu;
  let end_lsn =
    Log_manager.append t.log ~prev:commit_lsn ~txn:txn.Txn.id Log_record.End
  in
  txn.Txn.last_lsn <- end_lsn;
  Hashtbl.remove t.live txn.Txn.id;
  Mutex.unlock t.mu;
  Lock_manager.release_all t.locks ~owner:txn.Txn.id;
  (* The transaction's version timestamps become part of the retired
     prefix only now, after the commit record exists (and, for User
     transactions, is durable): a snapshot pinned at the watermark can
     never observe an uncommitted version. *)
  Snapshot.retire_all t.snap txn.Txn.tracked_ts;
  txn.Txn.tracked_ts <- [];
  (* Deferred work that was contingent on commit (e.g. scheduling the
     posting of an index term for an in-transaction leaf split). *)
  List.iter (fun f -> f ()) (List.rev txn.Txn.on_commit);
  txn.Txn.on_commit <- [];
  match (txn.Txn.kind, t.on_user_commit) with
  | Txn.User, Some f -> f ()
  | _ -> ()

let abort t txn =
  assert (Txn.is_active txn);
  let from_lsn = txn.Txn.last_lsn in
  Mutex.lock t.mu;
  t.undoing <- t.undoing + 1;
  let abort_lsn =
    Log_manager.append t.log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id Log_record.Abort
  in
  txn.Txn.last_lsn <- abort_lsn;
  Mutex.unlock t.mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.mu;
      t.undoing <- t.undoing - 1;
      if t.undoing = 0 then Condition.broadcast t.undo_done;
      Mutex.unlock t.mu)
    (fun () ->
      let last_clr =
        Recovery.rollback ~prev:abort_lsn ~log:t.log ~pool:t.pool ~txn:txn.Txn.id
          ~from_lsn ()
      in
      let end_prev = if Lsn.is_null last_clr then abort_lsn else last_clr in
      Mutex.lock t.mu;
      let end_lsn = Log_manager.append t.log ~prev:end_prev ~txn:txn.Txn.id Log_record.End in
      txn.Txn.last_lsn <- end_lsn;
      txn.Txn.state <- Txn.Aborted;
      Hashtbl.remove t.live txn.Txn.id;
      Mutex.unlock t.mu);
  Lock_manager.release_all t.locks ~owner:txn.Txn.id;
  (* Retire only after the undo walk removed the versions: the watermark
     must never cover a timestamp whose (now aborted) version is still in
     the tree. *)
  Snapshot.retire_all t.snap txn.Txn.tracked_ts;
  txn.Txn.tracked_ts <- []

let begin_checkpoint t =
  Mutex.lock t.mu;
  (* A live abort writes CLRs outside [t.mu] without advancing [last_lsn];
     snapshotting mid-abort would seed recovery with a stale entry and
     double-undo. Aborts are rare and bounded; wait them out. Aborts that
     begin after the fence below are fine — all their records carry LSNs
     above it, so analysis sees them. *)
  while t.undoing > 0 do
    Condition.wait t.undo_done t.mu
  done;
  let lsn =
    Log_manager.append t.log ~prev:Lsn.null ~txn:0 Log_record.Begin_checkpoint
  in
  let att =
    Hashtbl.fold
      (fun id txn acc -> (id, txn.Txn.last_lsn, txn.Txn.state = Txn.Committed) :: acc)
      t.live []
  in
  Mutex.unlock t.mu;
  (lsn, att)

let active t =
  Mutex.lock t.mu;
  let l =
    Hashtbl.fold (fun id txn acc -> (id, txn.Txn.last_lsn) :: acc) t.live []
  in
  Mutex.unlock t.mu;
  l

let oldest_first_lsn t =
  Mutex.lock t.mu;
  let v =
    Hashtbl.fold
      (fun _ txn acc -> min acc txn.Txn.first_lsn)
      t.live max_int
  in
  Mutex.unlock t.mu;
  if v = max_int then None else Some v

let active_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.mu;
  n

let crash t =
  Mutex.lock t.mu;
  Hashtbl.reset t.live;
  t.undoing <- 0;
  Condition.broadcast t.undo_done;
  Mutex.unlock t.mu
