(** The transaction manager: ties transactions to the log, the buffer pool
    and the lock manager.

    {!update} is the single gate through which all page changes flow: it
    appends the Update record, applies the operation to the in-buffer page,
    stamps the page LSN (advancing the node's state identifier) and marks
    the frame dirty — the WAL protocol by construction. The caller must hold
    the frame's X latch. *)

type t

val create :
  ?first_id:int ->
  ?ts_floor:int ->
  log:Pitree_wal.Log_manager.t ->
  pool:Pitree_storage.Buffer_pool.t ->
  locks:Pitree_lock.Lock_manager.t ->
  unit ->
  t
(** [first_id] (default 1) seeds the transaction-id counter; after recovery
    it must exceed every id present in the log. [ts_floor] (default 0)
    seeds the commit-timestamp allocator; after recovery it must be at
    least the largest [Commit_ts] in the log (tree clocks recovered later
    raise it further via {!Snapshot.observe_floor}). *)

val log : t -> Pitree_wal.Log_manager.t
val pool : t -> Pitree_storage.Buffer_pool.t
val locks : t -> Pitree_lock.Lock_manager.t

val snapshots : t -> Snapshot.t
(** The commit-timestamp allocator. Transactions retire their
    [tracked_ts] here at commit/abort. *)

val wal_stats : t -> Pitree_wal.Log_manager.stats
(** The log's group-commit record: forces (real fsyncs), flush batching and
    commit-wait latency (time blocked in the force pipeline). *)

val begin_txn : t -> Txn.kind -> Txn.t

val update :
  ?lundo:Pitree_wal.Log_record.lundo ->
  t -> Txn.t -> Pitree_storage.Buffer_pool.frame -> Pitree_wal.Page_op.t ->
  Pitree_wal.Lsn.t
(** Logged page write (see module doc). Returns the record's LSN, which is
    now also the page's LSN. [lundo] attaches a logical-undo descriptor
    (non-page-oriented UNDO; see {!Pitree_wal.Logical}). *)

val commit : ?commits:int -> t -> Txn.t -> unit
(** Appends Commit (+End). Forces the log for [User] transactions only —
    a [System] commit is relatively durable. Releases the transaction's
    locks. [commits] (default 1) is how many logical user commits this
    transaction carries — a combined write batch commits once for N puts —
    and is only forwarded to [Log_manager.flush]'s accounting. *)

val abort : t -> Txn.t -> unit
(** Appends Abort, undoes all the transaction's updates (writing CLRs),
    appends End, releases locks. *)

val begin_checkpoint : t -> Pitree_wal.Lsn.t * (int * Pitree_wal.Lsn.t * bool) list
(** Open a fuzzy checkpoint: append the [Begin_checkpoint] fence record
    and snapshot the active-transaction table — (txn id, last LSN,
    committed?) — in one critical section, so the snapshot is exactly
    consistent as of the fence's LSN (every lifecycle append shares the
    same mutex). Waits until no live abort is writing CLRs. Returns the
    fence LSN and the table, destined for the matching
    [End_checkpoint]. *)

val set_on_user_commit : t -> (unit -> unit) -> unit
(** [f] runs after each user-transaction commit completes (locks
    released, deferred work run), in the committing thread — the
    checkpointer's log-growth trigger. Exceptions propagate to the
    committer. *)

val active : t -> (int * Pitree_wal.Lsn.t) list
(** Live transactions and their last LSNs (informational; checkpoints use
    {!begin_checkpoint}). *)

val active_count : t -> int

val oldest_first_lsn : t -> Pitree_wal.Lsn.t option
(** The oldest Begin LSN among live transactions ([None] if idle) — the
    lower bound on what rollback could still need; log truncation must
    not pass it. *)

val crash : t -> unit
(** Forget all volatile transaction state (part of simulated power
    failure). *)
