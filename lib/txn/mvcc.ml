(* Snapshot-isolation transactions over the version store.

   A transaction opened with [begin_snapshot] pins the allocator watermark
   as its read timestamp; every Engine.S read inside it is an as-of read at
   that time (no lock-manager calls, no latch waits on the OLC path).
   Writes are buffered in the transaction — the version store holds nothing
   uncommitted from an SI transaction — and installed at commit, all
   stamped with ONE freshly allocated commit timestamp, after a
   first-committer-wins check: if any written key has a version newer than
   the snapshot, the transaction aborts with [Write_conflict].

   The single-timestamp-per-transaction rule is what makes the watermark a
   consistent cut: a snapshot can never see half of a transaction's write
   set, because the whole set shares one timestamp and that timestamp is
   retired (making it visible below the watermark) only after the commit
   record is logged.

   Commit order per SI writer:
     FCW validate -> allocate ts -> install versions -> Commit_ts record ->
     Commit record (Txn_mgr.commit) -> retire ts.
   The whole sequence runs under a per-allocator commit section, so
   first-committer-wins is decided against a stable set of committed
   versions. Readers are unaffected — they never take the section.

   This layer deliberately knows nothing about any particular engine: trees
   register an [ops] vtable (from Tsb.attach) keyed by root page id. *)

module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Crash_point = Pitree_util.Crash_point
module Sched_hook = Pitree_util.Sched_hook

let () =
  List.iter Crash_point.register
    [ "mvcc.commit.validated"; "mvcc.commit.allocated"; "mvcc.commit.logged" ]

exception Write_conflict of { txn : int; key : string }
exception Stale_snapshot

type ops = {
  newest : string -> int option;
      (* newest version timestamp of [key] (tombstones count), any time *)
  apply : Txn.t -> time:int -> key:string -> value:string option -> unit;
      (* install a committed version ([None] = tombstone) at [time] *)
}

(* Per-tree vtables, registered by the engines at attach time. Keyed by
   root page id — the same id Engine.S writes carry. *)
let registry : (int, ops) Hashtbl.t = Hashtbl.create 8
let registry_mu = Mutex.create ()

let register_tree tree ops =
  Mutex.lock registry_mu;
  Hashtbl.replace registry tree ops;
  Mutex.unlock registry_mu

let ops_for tree =
  Mutex.lock registry_mu;
  let o = Hashtbl.find_opt registry tree in
  Mutex.unlock registry_mu;
  match o with
  | Some o -> o
  | None ->
      failwith
        (Printf.sprintf
           "Mvcc: tree %d has no registered version-store ops (SI writes \
            need a TSB tree)"
           tree)

(* --- injected bugs (CI oracle validation) ------------------------------ *)

module Testing = struct
  type bug = No_bug | Stale_snapshot_read | Lost_first_committer

  let armed = Atomic.make No_bug
  let arm b = Atomic.set armed b
  let current () = Atomic.get armed

  let of_name = function
    | "stale-snapshot-read" -> Some Stale_snapshot_read
    | "lost-first-committer" -> Some Lost_first_committer
    | _ -> None
end

(* --- stats ------------------------------------------------------------- *)

type stats = {
  begun : int;  (* snapshots opened *)
  committed : int;  (* SI commits (incl. read-only) *)
  conflicts : int;  (* first-committer-wins aborts *)
  aborted : int;  (* all SI aborts (conflicts included) *)
  si_reads : int;  (* reads served from a snapshot *)
  stale_aborts : int;  (* snapshots that straddled a crash *)
}

let c_begun = Atomic.make 0
let c_committed = Atomic.make 0
let c_conflicts = Atomic.make 0
let c_aborted = Atomic.make 0
let c_si_reads = Atomic.make 0
let c_stale = Atomic.make 0

let stats () =
  {
    begun = Atomic.get c_begun;
    committed = Atomic.get c_committed;
    conflicts = Atomic.get c_conflicts;
    aborted = Atomic.get c_aborted;
    si_reads = Atomic.get c_si_reads;
    stale_aborts = Atomic.get c_stale;
  }

let sub_stats a b =
  {
    begun = a.begun - b.begun;
    committed = a.committed - b.committed;
    conflicts = a.conflicts - b.conflicts;
    aborted = a.aborted - b.aborted;
    si_reads = a.si_reads - b.si_reads;
    stale_aborts = a.stale_aborts - b.stale_aborts;
  }

let pp_stats ppf s =
  Fmt.pf ppf "begun=%d committed=%d conflicts=%d aborted=%d si_reads=%d stale=%d"
    s.begun s.committed s.conflicts s.aborted s.si_reads s.stale_aborts

(* --- snapshot lifecycle ------------------------------------------------ *)

let begin_snapshot mgr =
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  let snap = Txn_mgr.snapshots mgr in
  let read_ts = Snapshot.begin_snapshot snap in
  txn.Txn.si <-
    Some
      {
        Txn.read_ts;
        snap;
        writes = Hashtbl.create 8;
        si_reads = 0;
        released = false;
      };
  Atomic.incr c_begun;
  txn

let si_of txn = txn.Txn.si

let release si =
  if not si.Txn.released then begin
    si.Txn.released <- true;
    Snapshot.release_snapshot si.Txn.snap si.Txn.read_ts
  end

(* A snapshot that survived a crash+recover holds a pin on the discarded
   allocator: detect by physical identity against the manager's current
   one and abort the transaction cleanly. *)
let check_current mgr si =
  if not (si.Txn.snap == Txn_mgr.snapshots mgr) then begin
    release si;
    Atomic.incr c_stale;
    Atomic.incr c_aborted;
    raise Stale_snapshot
  end

(* Read timestamp the engines must use. The injected stale-snapshot-read
   bug makes readers observe the newest committed state instead of their
   snapshot — exactly the violation the sim's SI oracle must catch. *)
let read_time si =
  match Testing.current () with
  | Testing.Stale_snapshot_read -> max_int
  | _ -> si.Txn.read_ts

let note_read si =
  si.Txn.si_reads <- si.Txn.si_reads + 1;
  Atomic.incr c_si_reads

let buffered si ~tree ~key = Hashtbl.find_opt si.Txn.writes (tree, key)

let buffer_write si ~tree ~key value =
  Hashtbl.replace si.Txn.writes (tree, key) value

let writes_for si ~tree =
  Hashtbl.fold
    (fun (tr, key) v acc -> if tr = tree then (key, v) :: acc else acc)
    si.Txn.writes []

(* --- commit ------------------------------------------------------------ *)

(* Serialize SI committers against each other (per allocator) so the FCW
   check and the version installs form one atomic step. Sim-aware: under
   the cooperative scheduler a bare [Mutex.lock] would wedge the single
   scheduler thread, so fibers spin through [Sched_hook.wait] instead
   (same idiom as the lock manager's sim path). *)
let commit_section snap f =
  let mu = Snapshot.commit_mu snap and busy = Snapshot.commit_busy snap in
  (if Sched_hook.active () then begin
     let rec acquire () =
       if not (Mutex.try_lock mu) then begin
         Sched_hook.wait Sched_hook.Cond "mvcc.commit" (fun () ->
             not (Atomic.get busy));
         acquire ()
       end
     in
     acquire ()
   end
   else Mutex.lock mu);
  Atomic.set busy true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set busy false;
      Mutex.unlock mu)
    f

let abort mgr txn =
  (match txn.Txn.si with
  | Some si ->
      release si;
      Atomic.incr c_aborted
  | None -> ());
  if Txn.is_active txn then Txn_mgr.abort mgr txn

let commit mgr txn =
  match txn.Txn.si with
  | None ->
      Txn_mgr.commit mgr txn;
      None
  | Some si -> (
      check_current mgr si;
      let writes =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) si.Txn.writes []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      if writes = [] then begin
        (* Read-only: nothing to validate, no commit timestamp needed. *)
        Txn_mgr.commit mgr txn;
        release si;
        Atomic.incr c_committed;
        None
      end
      else
        let snap = si.Txn.snap in
        match
          commit_section snap (fun () ->
              (* First committer wins: any committed version of a written
                 key newer than the snapshot means someone else got there
                 first. (Conservative: an uncommitted autocommit writer's
                 version also trips this — a spurious but safe abort.) *)
              if Testing.current () <> Testing.Lost_first_committer then
                List.iter
                  (fun ((tree, key), _) ->
                    match (ops_for tree).newest key with
                    | Some ts when ts > si.Txn.read_ts ->
                        raise (Write_conflict { txn = txn.Txn.id; key })
                    | _ -> ())
                  writes;
              Crash_point.hit "mvcc.commit.validated";
              let ts = Snapshot.allocate snap in
              Txn.track_ts txn ts;
              (* Crash here: the timestamp is allocated but no Commit_ts
                 record exists — recovery must still move the allocator
                 past it via the recovered tree clocks. *)
              Crash_point.hit "mvcc.commit.allocated";
              List.iter
                (fun ((tree, key), value) ->
                  (ops_for tree).apply txn ~time:ts ~key ~value)
                writes;
              let log = Txn_mgr.log mgr in
              let lsn =
                Log_manager.append log ~prev:txn.Txn.last_lsn ~txn:txn.Txn.id
                  (Log_record.Commit_ts { ts })
              in
              txn.Txn.last_lsn <- lsn;
              Crash_point.hit "mvcc.commit.logged";
              Txn_mgr.commit mgr txn;
              ts)
        with
        | ts ->
            release si;
            Atomic.incr c_committed;
            Some ts
        | exception (Crash_point.Crash_requested _ as e) ->
            (* Simulated power failure mid-commit: leave the transaction
               dangling for recovery to roll back. *)
            release si;
            raise e
        | exception e ->
            (match e with
            | Write_conflict _ -> Atomic.incr c_conflicts
            | _ -> ());
            Atomic.incr c_aborted;
            if Txn.is_active txn then Txn_mgr.abort mgr txn;
            release si;
            raise e)
