(** Commit-timestamp allocator and snapshot watermarks for snapshot
    isolation.

    A monotone counter hands out version timestamps ([allocate]); each is
    tracked as in-flight until its transaction retires it ([retire_all],
    called from {!Txn_mgr} commit/abort via [Txn.tracked_ts]). The
    watermark [completed] is the largest T with every allocated timestamp
    <= T retired; snapshots pin it as their read timestamp, which makes a
    snapshot a consistent cut: no committed-but-invisible or
    visible-but-uncommitted version can exist at or below it, because an
    SI transaction's entire write set shares one timestamp.

    The allocator is volatile; recovery seeds a fresh one with
    [observe_floor] from [Commit_ts] log records and recovered tree
    clocks. *)

type t

val create : ?floor:int -> unit -> t
(** Fresh allocator. The first [allocate] returns [floor + 1]
    (default floor 0). *)

val allocate : t -> int
(** Hand out the next timestamp and mark it in-flight. *)

val retire_all : t -> int list -> unit
(** Atomically retire a transaction's tracked timestamps and advance the
    watermark. Unknown timestamps are ignored. *)

val completed : t -> int
(** Watermark: largest T such that every allocated timestamp <= T has
    been retired. *)

val begin_snapshot : t -> int
(** Pin the current watermark as a snapshot read timestamp (refcounted;
    bounds {!gc_cap} until released). *)

val release_snapshot : t -> int -> unit
(** Drop one pin on [ts]. No-op if not pinned. *)

val oldest_live : t -> int option
(** Smallest pinned snapshot timestamp, if any. *)

val live_snapshots : t -> int
(** Number of currently pinned snapshots (counting refcounts). *)

val observe_floor : t -> int -> unit
(** Ensure future [allocate]s return > [ts], and advance the watermark to
    [ts] when no older allocation is still in flight. Used to seed a
    recovered allocator from [Commit_ts] records and tree clocks. *)

val note_checkpoint : t -> unit
(** Record the current watermark as the checkpoint floor; called when a
    fuzzy checkpoint completes. *)

val checkpoint_floor : t -> int

val gc_cap : t -> int
(** Largest version time GC may retire:
    [min (oldest live snapshot - 1) checkpoint_floor]. *)

val commit_mu : t -> Mutex.t
(** Mutex serializing SI committers against this allocator; acquired and
    released only by {!Mvcc}'s commit section. *)

val commit_busy : t -> bool Atomic.t
(** Mirrors whether {!commit_mu} is held — the predicate the simulator's
    cooperative wait spins on. *)

type stats = {
  allocated : int;  (** timestamps handed out *)
  retired_watermark : int;  (** current [completed] *)
  live : int;  (** currently pinned snapshots *)
  pinned : int;  (** snapshots begun, cumulative *)
}

val stats : t -> stats
