module Crash_point = Pitree_util.Crash_point

let run mgr f =
  let txn = Txn_mgr.begin_txn mgr Txn.System in
  match f txn with
  | v ->
      Txn_mgr.commit mgr txn;
      v
  | exception (Crash_point.Crash_requested _ as e) ->
      (* Simulated power failure: leave the action dangling in the log for
         recovery to roll back. *)
      raise e
  | exception e ->
      Txn_mgr.abort mgr txn;
      raise e

let run_if mgr f = run mgr f
