(** Snapshot-isolation transactions over the version store.

    [begin_snapshot] opens a transaction whose reads are as-of reads at a
    pinned read timestamp (the {!Snapshot} watermark) — no lock-manager
    calls, no latch waits on the OLC path. Writes are buffered in the
    transaction and installed only at {!commit}, all stamped with one
    freshly allocated commit timestamp, after a first-committer-wins
    check: a committed version of any written key newer than the snapshot
    aborts the transaction with {!Write_conflict}.

    Write skew is permitted — SI validates write-write collisions only;
    two transactions that read each other's written keys but write
    disjoint keys both commit.

    The layer is engine-agnostic: version-store trees register an {!ops}
    vtable keyed by root page id (TSB trees do so at attach). *)

exception Write_conflict of { txn : int; key : string }
(** Commit-time first-committer-wins failure; the transaction has already
    been aborted (versions were never installed). *)

exception Stale_snapshot
(** The snapshot was pinned against an allocator that a crash+recover has
    since replaced; the transaction cannot proceed and holds nothing. *)

type ops = {
  newest : string -> int option;
      (** newest version timestamp of a key, tombstones included *)
  apply : Txn.t -> time:int -> key:string -> value:string option -> unit;
      (** install a committed version ([None] = tombstone) at [time] *)
}

val register_tree : int -> ops -> unit
(** Register the version-store vtable for tree [root]. Idempotent
    (replaces). *)

(** {2 Lifecycle} *)

val begin_snapshot : Txn_mgr.t -> Txn.t
(** Open an SI transaction: begins a [User] transaction and pins the
    current allocator watermark as its read timestamp. *)

val commit : Txn_mgr.t -> Txn.t -> int option
(** Validate first-committer-wins, install the buffered writes at one
    fresh commit timestamp, log [Commit_ts], and commit. Returns the
    commit timestamp ([None] for a read-only transaction). Raises
    {!Write_conflict} (transaction already aborted) or {!Stale_snapshot}.
    On a transaction without SI state, delegates to {!Txn_mgr.commit}. *)

val abort : Txn_mgr.t -> Txn.t -> unit
(** Release the snapshot pin and abort (buffered writes are simply
    dropped). Safe on already-finished transactions. *)

(** {2 Engine read/write support}

    Used by engine adapters (e.g. [Tsb_engine]) to dispatch [?txn]
    operations through the snapshot. *)

val si_of : Txn.t -> Txn.si option

val check_current : Txn_mgr.t -> Txn.si -> unit
(** Raise {!Stale_snapshot} (releasing the pin) if the snapshot's
    allocator is no longer [mgr]'s — i.e. it straddles a crash. *)

val read_time : Txn.si -> int
(** The as-of timestamp reads must use. Normally [read_ts]; the injected
    [Stale_snapshot_read] bug returns [max_int] instead. *)

val note_read : Txn.si -> unit
val buffered : Txn.si -> tree:int -> key:string -> string option option
val buffer_write : Txn.si -> tree:int -> key:string -> string option -> unit

val writes_for : Txn.si -> tree:int -> (string * string option) list
(** All buffered writes against [tree], unordered. *)

(** {2 Injected bugs} *)

module Testing : sig
  type bug = No_bug | Stale_snapshot_read | Lost_first_committer

  val arm : bug -> unit
  val current : unit -> bug

  val of_name : string -> bug option
  (** ["stale-snapshot-read"] / ["lost-first-committer"]. *)
end

(** {2 Stats} *)

type stats = {
  begun : int;
  committed : int;
  conflicts : int;
  aborted : int;
  si_reads : int;
  stale_aborts : int;
}

val stats : unit -> stats
(** Process-wide cumulative counters (compute deltas like the other
    harness stats). *)

val sub_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit
