(* Crash points now live in Pitree_util so that lower layers (notably the
   log manager's group-commit pipeline) can hit them without a dependency
   cycle. This alias preserves the historical [Pitree_txn.Crash_point]
   path; the registry and exception are shared with the util module. *)

include Pitree_util.Crash_point
