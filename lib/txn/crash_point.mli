(** Alias of {!Pitree_util.Crash_point} (same registry, same exception).
    Kept so existing [Pitree_txn.Crash_point] references keep working; the
    implementation moved down to [pitree_util] so the WAL layer can hit
    crash points too. *)

include module type of Pitree_util.Crash_point
