(** Transaction descriptors.

    Two kinds, with identical logging machinery but different commit
    durability and different relationships to structure changes:

    - [User]: a database transaction. Commit forces the log. Its database
      locks are held to commit/abort (strict two-phase).
    - [System]: one of the paper's independent {e atomic actions} — a node
      split, an index-term posting, a node consolidation. Its commit is
      relatively durable (no log force, section 4.3.1); its locks are
      two-phase but released at the end of the action. *)

type kind = User | System

type state = Active | Committed | Aborted

type si = {
  read_ts : int;
      (** snapshot read timestamp: the allocator watermark at
          [begin_snapshot]. Reads inside this transaction observe the
          version store as of this time. *)
  snap : Snapshot.t;
      (** the allocator the snapshot is pinned against; compared by
          physical identity to detect snapshots that straddle a crash *)
  writes : (int * string, string option) Hashtbl.t;
      (** buffered writes, [(tree, key) -> value or tombstone]; installed
          into the version store only at commit, all stamped with one
          commit timestamp *)
  mutable si_reads : int;
  mutable released : bool;  (** snapshot pin already dropped *)
}
(** Snapshot-isolation state carried by a transaction opened with
    {!Mvcc.begin_snapshot}. *)

type t = {
  id : int;
  kind : kind;
  first_lsn : Pitree_wal.Lsn.t;
      (** the Begin record's LSN — rollback never needs anything older, so
          log truncation must keep every record at or above the oldest
          active transaction's [first_lsn] *)
  mutable last_lsn : Pitree_wal.Lsn.t;
  mutable state : state;
  mutable updated_nodes : (int * int) list;
      (** (tree, page) pairs whose records this transaction updated; consulted
          by the split logic to decide whether a leaf split can run as an
          independent atomic action (section 4.2.1). *)
  mutable on_commit : (unit -> unit) list;
      (** callbacks run after a successful commit — e.g. scheduling the
          index-term posting for a split performed inside this transaction
          (section 4.2.2: posting may not occur unless/until T commits). *)
  mutable tracked_ts : int list;
      (** version timestamps this transaction allocated from the
          {!Snapshot} allocator; retired by {!Txn_mgr} at commit/abort so
          the snapshot watermark can advance *)
  mutable si : si option;  (** snapshot-isolation state, if any *)
}

val track_ts : t -> int -> unit
(** Record an allocated version timestamp for retirement at end of
    transaction. *)

val is_active : t -> bool

val add_on_commit : t -> (unit -> unit) -> unit
val pp : Format.formatter -> t -> unit
