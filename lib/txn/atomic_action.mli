(** Atomic actions (paper sections 4, 5).

    An atomic action is a short, independent unit of structure change: it is
    serializable against other update actions (via latches and, where records
    move, locks), has the all-or-nothing property (via the recovery method),
    and leaves the Pi-tree well-formed. Searchers may observe the tree
    {e between} atomic actions — those intermediate states are well-formed
    too.

    Implemented as {e system transactions} (section 4.3.2, option ii):
    recovery rolls back any atomic action whose commit is not durable, with
    no structure-change-specific code. *)

val run : Txn_mgr.t -> (Txn.t -> 'a) -> 'a
(** [run mgr f] executes [f] inside a fresh system transaction, committing
    on return (without forcing the log — relative durability). Any exception
    aborts the action (all its page updates are undone with CLRs) and is
    re-raised. [Pitree_util.Crash_point.Crash_requested] is NOT caught: it propagates
    with the action left {e unfinished} in the log, exactly like a power
    failure at that instant. *)

val run_if : Txn_mgr.t -> (Txn.t -> 'a option) -> 'a option
(** Like {!run}, but [f] may conclude the action is no longer needed (the
    tree state is re-tested inside the action — idempotent completion,
    section 5.1) by returning [None]; the action still commits (it may have
    performed no updates). *)
