type kind = User | System

type state = Active | Committed | Aborted

type si = {
  read_ts : int;
  snap : Snapshot.t;  (* allocator the snapshot is pinned against *)
  writes : (int * string, string option) Hashtbl.t;
      (* (tree, key) -> value or tombstone; last write wins *)
  mutable si_reads : int;
  mutable released : bool;  (* snapshot pin dropped *)
}

type t = {
  id : int;
  kind : kind;
  first_lsn : Pitree_wal.Lsn.t;  (* the Begin record *)
  mutable last_lsn : Pitree_wal.Lsn.t;
  mutable state : state;
  mutable updated_nodes : (int * int) list;
  mutable on_commit : (unit -> unit) list;
  mutable tracked_ts : int list;
  mutable si : si option;
}

let track_ts t ts = t.tracked_ts <- ts :: t.tracked_ts

let is_active t = t.state = Active

let add_on_commit t f = t.on_commit <- f :: t.on_commit

let pp ppf t =
  Fmt.pf ppf "txn#%d(%s,%s)" t.id
    (match t.kind with User -> "user" | System -> "sys")
    (match t.state with Active -> "active" | Committed -> "committed" | Aborted -> "aborted")
