(** Remembered root-to-leaf paths with state identifiers (paper section 5.2).

    A traversal records, per level, the node it passed through, that node's
    state identifier (page LSN) and the slot where the relevant index term
    was found. Later atomic actions of the same structure change use the
    path to reach the parent level without a full re-traversal — but must
    first {e verify} it, because the Pi-tree may have changed in between:

    - unchanged state id => the remembered node and slot are still exact;
    - changed state id under the CNS invariant => the node still exists
      (nodes are immortal); re-search within it, or follow side pointers;
    - changed state id under the CP invariant with "de-allocation is a node
      update" (section 5.2.2 strategy (b)) => climb the path toward the
      root until an unchanged node is found, and re-descend from there. *)

type entry = {
  pid : int;
  level : int;     (** tree level of this node (leaf = 0) *)
  state_id : int;  (** page LSN when traversed *)
  slot : int;      (** entry index of the index term followed *)
}

type t = entry list

val empty : t

val push : t -> pid:int -> level:int -> state_id:int -> slot:int -> t

val level : t -> int -> entry option
(** The remembered node at the given tree level, if recorded. *)

val matches : entry -> version:int -> bool
(** Latch-free verification: [matches e ~version] holds iff a node's
    current version word (see [Pitree_sync.Version]; frame latches
    publish twice the page LSN) proves the node is exactly as remembered
    — the state identifier is unchanged and no writer is mid-mutation
    (an odd word never matches). Callers that act on the node contents
    must still re-validate the word afterwards, or take a latch. *)

val above : t -> int -> t
(** Entries for levels strictly greater than the argument. *)

val pp : Format.formatter -> t -> unit
