type entry = { pid : int; level : int; state_id : int; slot : int }

type t = entry list

let empty = []

let push t ~pid ~level ~state_id ~slot = { pid; level; state_id; slot } :: t

let level t l = List.find_opt (fun e -> e.level = l) t

(* Version-based verification: frame latches publish [2 * page LSN] in
   their version word whenever no writer holds the X latch (see
   Pitree_sync.Version), so an entry is still exact iff the word equals
   twice its remembered state identifier — checkable without latching. *)
let matches e ~version = version = 2 * e.state_id

let above t l = List.filter (fun e -> e.level > l) t

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " <- ")
       (fun ppf e -> Format.fprintf ppf "L%d:%d@%d/%d" e.level e.pid e.state_id e.slot))
    t
