(** The uniform engine interface every index engine implements directly
    (B-link, TSB, hB — and the harness baselines through an adapter).

    One signature, four operations, [?txn] everywhere: without it an
    operation autocommits (and may route through the combining funnel);
    with it the operation joins the caller's transaction — reads take the
    record's S lock, updates its X lock — and the caller commits. Engines
    without a transactional variant of an operation ignore [?txn] rather
    than fail, so mixed workloads run against every engine; their docs say
    which.

    Structure-maintenance machinery (splits, consolidation, deletion/merge,
    free-list recycling) plugs in {e behind} this interface: the driver,
    the endurance rig, the chaos harness and the simulator all speak
    [Engine], so a protocol change in one engine is exercised by every
    harness for free. *)

module type S = sig
  type t

  val engine_name : string

  val insert : ?txn:Pitree_txn.Txn.t -> t -> key:string -> value:string -> unit
  val delete : ?txn:Pitree_txn.Txn.t -> t -> string -> bool

  val find : ?txn:Pitree_txn.Txn.t -> t -> string -> string option
  (** With [?txn]: a locked read — the record's S lock is acquired under
      the no-wait rule and held to commit (engines without record locks
      ignore [?txn]). *)

  val scan : ?txn:Pitree_txn.Txn.t -> t -> low:string -> n:int -> int
  (** Count up to [n] records with key >= [low] in key order. Engines
      without ordered string iteration (hB, the baselines) report 0. *)
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance
(** An engine packaged with a value of its handle type — the currency the
    harnesses traffic in. *)

val name : instance -> string
val insert : ?txn:Pitree_txn.Txn.t -> instance -> key:string -> value:string -> unit
val delete : ?txn:Pitree_txn.Txn.t -> instance -> string -> bool
val find : ?txn:Pitree_txn.Txn.t -> instance -> string -> string option
val scan : ?txn:Pitree_txn.Txn.t -> instance -> low:string -> n:int -> int
