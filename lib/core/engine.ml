module type S = sig
  type t

  val engine_name : string
  val insert : ?txn:Pitree_txn.Txn.t -> t -> key:string -> value:string -> unit
  val delete : ?txn:Pitree_txn.Txn.t -> t -> string -> bool
  val find : ?txn:Pitree_txn.Txn.t -> t -> string -> string option
  val scan : ?txn:Pitree_txn.Txn.t -> t -> low:string -> n:int -> int
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance

let name (Inst ((module M), _)) = M.engine_name
let insert ?txn (Inst ((module M), t)) ~key ~value = M.insert ?txn t ~key ~value
let delete ?txn (Inst ((module M), t)) key = M.delete ?txn t key
let find ?txn (Inst ((module M), t)) key = M.find ?txn t key
let scan ?txn (Inst ((module M), t)) ~low ~n = M.scan ?txn t ~low ~n
